// Package remote reaches a paced estimator service (internal/targetserver)
// over HTTP, implementing ce.Target so the whole attack pipeline —
// speculation probes, surrogate imitation, poison execution — runs
// against a genuinely out-of-process deployment.
//
// Design points:
//
//   - RemoteTarget performs NO internal retries. It classifies failures
//     (4xx → ce.ErrInvalidQuery, permanent; 429/5xx/network → transient)
//     and lets the pipeline's one retry layer (internal/resilience)
//     decide — so obs retry counters count each logical retry exactly
//     once, and a fault injector wrapped around the target composes
//     without double accounting.
//   - Concurrent EstimateContext callers coalesce into server batches:
//     the first caller opens a window (Options.CoalesceWindow); callers
//     arriving inside it ride the same POST /v1/estimate, up to
//     Options.MaxBatch queries.
//   - Connections pool through one http.Transport; per-call deadlines
//     map the caller's context onto the exchange, with
//     Options.RequestTimeout as the backstop when the context carries
//     none.
package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pace/internal/ce"
	"pace/internal/obs"
	"pace/internal/query"
	"pace/internal/wire"
)

// ErrOverloaded marks a 429 — the server shed the call (admission queue
// full or client over its rate limit). Transient: back off and retry.
var ErrOverloaded = errors.New("remote: target overloaded")

// ErrUnavailable marks a 5xx or a transport-level failure (connection
// refused, reset, timeout). Transient: the resilience layer retries and
// the breaker counts it toward opening.
var ErrUnavailable = errors.New("remote: target unavailable")

// OverloadError is the concrete error behind every shed reply: a 429,
// or a 503 that carries a Retry-After header (a router holding clients
// off while it rebuilds a tenant on a surviving backend). It matches
// errors.Is(err, ErrOverloaded) so existing classification keeps
// working, and exposes the server's Retry-After hint so the resilience
// layer can wait exactly as long as the server asked instead of blind
// exponential backoff.
type OverloadError struct {
	// Status is the HTTP status that carried the shed (429 or 503).
	Status int
	// RetryAfter is the server's parsed Retry-After hint; 0 when the
	// header was absent or unparseable.
	RetryAfter time.Duration
	// Msg is the server's code+message for logs.
	Msg string
}

func (e *OverloadError) Error() string {
	s := fmt.Sprintf("%v: %s", ErrOverloaded, e.Msg)
	if e.RetryAfter > 0 {
		s += fmt.Sprintf(" (retry after %s)", e.RetryAfter)
	}
	return s
}

// Is makes errors.Is(err, ErrOverloaded) true for OverloadError values.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// RetryAfterHint reports the server's requested backoff. The resilience
// layer discovers it structurally (errors.As against an interface), so
// it needs no import of this package.
func (e *OverloadError) RetryAfterHint() time.Duration { return e.RetryAfter }

// parseRetryAfter parses a Retry-After header in its delta-seconds form
// (the only form paced and pacerouter emit — see wire.RetryAfter).
// HTTP-date forms and garbage yield 0 (no hint).
func parseRetryAfter(h string) time.Duration {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Options tunes a RemoteTarget. The zero value works.
type Options struct {
	// MaxBatch caps queries per wire request (default 64, the server's
	// default micro-batch).
	MaxBatch int
	// CoalesceWindow is how long the first of a burst of concurrent
	// EstimateContext calls waits for companions before flushing one
	// batched request (default 200µs; 0 disables coalescing — every
	// call is its own request, which the load generator relies on for
	// per-request latency).
	CoalesceWindow time.Duration
	// RequestTimeout bounds one HTTP exchange when the caller's context
	// has no earlier deadline (default 30s).
	RequestTimeout time.Duration
	// ClientID is sent as X-Pace-Client for per-client rate limiting
	// (default "host/pid"). Ignored by servers running with auth tokens —
	// there the identity is derived from AuthToken.
	ClientID string
	// Tenant routes calls at a multi-tenant host:
	// /v1/targets/<tenant>/estimate|execute instead of the legacy
	// unrouted endpoints (which alias the "default" tenant). Ignored when
	// the base URL itself already carries a /v1/targets/{id} route.
	Tenant string
	// AuthToken, when set, is sent as "Authorization: Bearer <token>" —
	// required by servers running with -auth-tokens.
	AuthToken string
	// Codec picks the data-path wire codec: "binary" (default) or
	// "json". Control-plane and admin calls always speak JSON. If the
	// server rejects the binary codec (415 unsupported_media), the
	// client downgrades to JSON once and sticks there.
	Codec string
	// StreamExecute switches ExecuteWorkload onto the streamed-execute
	// protocol: chunk uploads acked asynchronously (202 = enqueued) with
	// a completion poll, instead of sequential synchronous /execute
	// posts. Exactly-once under whole-stream retries: the execution
	// token is derived from the workload content and the server dedupes
	// (token, seq).
	StreamExecute bool
	// StreamChunk caps queries per streamed chunk (default 512, max
	// wire.MaxBatch).
	StreamChunk int
	// Client overrides the pooled HTTP client (tests).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxBatch > wire.MaxBatch {
		o.MaxBatch = wire.MaxBatch
	}
	if o.CoalesceWindow < 0 {
		o.CoalesceWindow = 0
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.ClientID == "" {
		host, _ := os.Hostname()
		o.ClientID = fmt.Sprintf("%s/%d", host, os.Getpid())
	}
	if o.Codec == "" {
		o.Codec = "binary"
	}
	if o.StreamChunk <= 0 {
		o.StreamChunk = 512
	}
	if o.StreamChunk > wire.MaxBatch {
		o.StreamChunk = wire.MaxBatch
	}
	return o
}

// Stats counts a RemoteTarget's wire traffic.
type Stats struct {
	// Requests is the number of HTTP exchanges sent.
	Requests int64
	// Queries is the number of queries carried across all exchanges.
	Queries int64
	// Coalesced counts estimate calls that rode a batch opened by
	// another caller.
	Coalesced int64
	// Overloaded, Invalid, Unavailable count classified failures.
	Overloaded, Invalid, Unavailable int64
	// BytesOut and BytesIn count request/response body bytes on the
	// wire (headers excluded) — the numbers behind the codec bandwidth
	// comparison in BENCH_remote.json.
	BytesOut, BytesIn int64
	// Codec names the data codec currently in effect ("binary" or
	// "json" — the latter either by configuration or after a sticky 415
	// downgrade).
	Codec string
}

// RemoteTarget implements ce.Target over the paced wire protocol.
type RemoteTarget struct {
	base   string // scheme://host[:port], no trailing slash
	prefix string // "/v1" or "/v1/targets/<tenant>"
	opts   Options
	client *http.Client

	codec      wire.Codec  // configured data codec
	downgraded atomic.Bool // sticky JSON fallback after a 415

	mu      sync.Mutex
	pending []*pendingEst
	flushT  *time.Timer

	requests, queries, coalesced          atomic.Int64
	overloaded, invalid, unavailableCount atomic.Int64
	bytesOut, bytesIn                     atomic.Int64
}

// wireCodec is the data codec currently in effect: the configured one,
// or JSON after a sticky 415 downgrade.
func (t *RemoteTarget) wireCodec() wire.Codec {
	if t.downgraded.Load() {
		return wire.JSON
	}
	return t.codec
}

var _ ce.Target = (*RemoteTarget)(nil)

type pendingEst struct {
	ctx context.Context // first caller's context; carries telemetry/trace
	q   *query.Query
	res chan pendingRes // buffered(1)
}

type pendingRes struct {
	est float64
	err error
}

// New builds a RemoteTarget for the service at baseURL — either a bare
// scheme://host:port (optionally routed by Options.Tenant) or a full
// tenant route scheme://host:port/v1/targets/<id>, the form README's
// multi-tenant quickstart passes to cmd/pace -target-url.
//
// Deprecated: use NewClient(baseURL, opts).Target(opts.Tenant) — one
// Client now hands out both the data-path target and the admin surface
// over a shared connection pool. New is kept as a thin wrapper.
func New(baseURL string, opts Options) (*RemoteTarget, error) {
	c, err := NewClient(baseURL, opts)
	if err != nil {
		return nil, err
	}
	return c.Target(opts.Tenant), nil
}

// Close flushes any open coalescing window and releases pooled
// connections.
func (t *RemoteTarget) Close() {
	t.mu.Lock()
	if t.flushT != nil {
		t.flushT.Stop()
	}
	batch := t.takeBatchLocked()
	t.mu.Unlock()
	if len(batch) > 0 {
		go t.sendBatch(batch)
	}
	if tr, ok := t.client.Transport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
}

// Stats snapshots the wire-traffic counters.
func (t *RemoteTarget) Stats() Stats {
	return Stats{
		Requests:    t.requests.Load(),
		Queries:     t.queries.Load(),
		Coalesced:   t.coalesced.Load(),
		Overloaded:  t.overloaded.Load(),
		Invalid:     t.invalid.Load(),
		Unavailable: t.unavailableCount.Load(),
		BytesOut:    t.bytesOut.Load(),
		BytesIn:     t.bytesIn.Load(),
		Codec:       t.wireCodec().Name(),
	}
}

// EstimateContext implements ce.Target: the estimate travels bit-exactly
// (wire.B64), so a remote estimate equals the in-process one.
func (t *RemoteTarget) EstimateContext(ctx context.Context, q *query.Query) (float64, error) {
	if t.opts.CoalesceWindow <= 0 {
		ests, err := t.estimateBatch(ctx, []*query.Query{q})
		if err != nil {
			return 0, err
		}
		return ests[0], nil
	}

	p := &pendingEst{ctx: ctx, q: q, res: make(chan pendingRes, 1)}
	t.mu.Lock()
	t.pending = append(t.pending, p)
	switch {
	case len(t.pending) == 1:
		// First in the window: arm the flush timer.
		t.flushT = time.AfterFunc(t.opts.CoalesceWindow, t.flushWindow)
	case len(t.pending) >= t.opts.MaxBatch:
		if t.flushT != nil {
			t.flushT.Stop()
		}
		batch := t.takeBatchLocked()
		t.mu.Unlock()
		t.coalesced.Add(1)
		t.sendBatch(batch)
		return t.await(ctx, p)
	default:
		t.coalesced.Add(1)
	}
	t.mu.Unlock()
	return t.await(ctx, p)
}

func (t *RemoteTarget) await(ctx context.Context, p *pendingEst) (float64, error) {
	select {
	case r := <-p.res:
		return r.est, r.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

func (t *RemoteTarget) takeBatchLocked() []*pendingEst {
	batch := t.pending
	t.pending = nil
	t.flushT = nil
	return batch
}

func (t *RemoteTarget) flushWindow() {
	t.mu.Lock()
	batch := t.takeBatchLocked()
	t.mu.Unlock()
	if len(batch) > 0 {
		t.sendBatch(batch)
	}
}

// sendBatch issues one wire request for the batch and fans results back
// out. The exchange runs under the batch's own timeout — individual
// callers' contexts only govern how long they wait, not the request
// (other callers in the batch still want the answer).
func (t *RemoteTarget) sendBatch(batch []*pendingEst) {
	// Keep the first caller's telemetry and trace context (values only —
	// WithoutCancel detaches its lifetime so one caller bailing cannot
	// kill the batch the others are still waiting on).
	ctx, cancel := context.WithTimeout(context.WithoutCancel(batch[0].ctx), t.opts.RequestTimeout)
	defer cancel()
	qs := make([]*query.Query, len(batch))
	for i, p := range batch {
		qs[i] = p.q
	}
	ests, err := t.estimateBatch(ctx, qs)
	for i, p := range batch {
		if err != nil {
			p.res <- pendingRes{err: err}
		} else {
			p.res <- pendingRes{est: ests[i]}
		}
	}
}

// ExecuteWorkload implements ce.Target: the feedback channel that makes
// the remote estimator incrementally retrain. Cards travel bit-exactly.
// With Options.StreamExecute the workload rides the streamed-execute
// protocol; otherwise it is chunked into sequential synchronous posts.
func (t *RemoteTarget) ExecuteWorkload(ctx context.Context, qs []*query.Query, cards []float64) error {
	if len(qs) != len(cards) {
		return fmt.Errorf("%w: %d queries with %d cards", ce.ErrInvalidQuery, len(qs), len(cards))
	}
	if len(qs) == 0 {
		return nil
	}
	if t.opts.StreamExecute {
		return t.executeStream(ctx, qs, cards)
	}
	// Chunk to the wire cap; the server applies each chunk in arrival
	// order through its single trainer goroutine.
	for lo := 0; lo < len(qs); lo += wire.MaxBatch {
		hi := lo + wire.MaxBatch
		if hi > len(qs) {
			hi = len(qs)
		}
		req := wire.ExecuteRequest{
			V:       wire.Version,
			Queries: wire.EncodeQueries(qs[lo:hi]),
			Cards:   wire.FromFloats(cards[lo:hi]),
		}
		cctx, sp := obs.StartSpan(ctx, "rpc_execute", obs.Int("queries", hi-lo))
		err := t.postData(cctx, t.prefix+"/execute",
			func(c wire.Codec) ([]byte, error) { return c.EncodeExecuteRequest(&req) },
			func(c wire.Codec, raw []byte) error {
				_, err := c.DecodeExecuteResponse(raw)
				return err
			})
		sp.End()
		if err != nil {
			return err
		}
		t.queries.Add(int64(hi - lo))
	}
	return nil
}

func (t *RemoteTarget) estimateBatch(ctx context.Context, qs []*query.Query) ([]float64, error) {
	ctx, sp := obs.StartSpan(ctx, "rpc_estimate", obs.Int("queries", len(qs)))
	defer sp.End()
	req := wire.EstimateRequest{V: wire.Version, Queries: wire.EncodeQueries(qs)}
	var resp *wire.EstimateResponse
	err := t.postData(ctx, t.prefix+"/estimate",
		func(c wire.Codec) ([]byte, error) { return c.EncodeEstimateRequest(&req) },
		func(c wire.Codec, raw []byte) error {
			var derr error
			resp, derr = c.DecodeEstimateResponse(raw)
			return derr
		})
	if err != nil {
		return nil, err
	}
	if len(resp.Estimates) != len(qs) {
		return nil, fmt.Errorf("%w: %d estimates for %d queries",
			ErrUnavailable, len(resp.Estimates), len(qs))
	}
	t.queries.Add(int64(len(qs)))
	return wire.ToFloats(resp.Estimates), nil
}

// errUnsupportedCodec marks a 415: the server does not speak the codec
// the request body arrived in. The data path downgrades to JSON (which
// every server speaks) and retries once.
var errUnsupportedCodec = errors.New("remote: server rejected request codec")

// errUnknownExecution marks a 404 carrying the unknown_execution code:
// the streamed-execute token is not in the server's registry.
var errUnknownExecution = errors.New("remote: unknown execution")

// postData sends one data-path exchange in the negotiated codec. The
// request body travels in wireCodec()'s encoding; the Accept header asks
// for the same back, and the response is decoded by whatever
// Content-Type the server chose (a binary-asking client must still
// accept JSON from a JSON-only server). A 415 downgrades the codec to
// JSON — sticky, so one old server demotes the connection exactly once.
func (t *RemoteTarget) postData(ctx context.Context, path string, encode func(wire.Codec) ([]byte, error), decode func(wire.Codec, []byte) error) error {
	for {
		c := t.wireCodec()
		payload, err := encode(c)
		if err != nil {
			return fmt.Errorf("remote: encode: %w", err)
		}
		raw, respCT, err := t.roundTrip(ctx, http.MethodPost, path, c.ContentType(), nil, payload, http.StatusOK)
		if err != nil {
			if errors.Is(err, errUnsupportedCodec) && c.Name() != "json" {
				t.downgraded.Store(true)
				continue
			}
			return err
		}
		respC, ok := wire.CodecForContentType(respCT)
		if !ok {
			t.unavailableCount.Add(1)
			return fmt.Errorf("%w: response in unknown content type %q", ErrUnavailable, respCT)
		}
		if err := decode(respC, raw); err != nil {
			t.unavailableCount.Add(1)
			return fmt.Errorf("%w: malformed response: %v", ErrUnavailable, err)
		}
		return nil
	}
}

// roundTrip runs one HTTP exchange: deadline backstop, identity and
// codec headers, byte accounting, and classification of every non-want
// status onto the pipeline's error taxonomy. It returns the body and
// its Content-Type on wantStatus; contentType may be "" for bodyless
// requests.
func (t *RemoteTarget) roundTrip(ctx context.Context, method, path, contentType string, hdr map[string]string, payload []byte, wantStatus int) ([]byte, string, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t.opts.RequestTimeout)
		defer cancel()
	}
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, t.base+path, rd)
	if err != nil {
		return nil, "", fmt.Errorf("remote: request: %w", err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if t.wireCodec().Name() == "binary" {
		// Ask for binary responses; JSON stays acceptable implicitly —
		// the server falls back to it when binary is disabled.
		req.Header.Set("Accept", wire.BinaryContentType)
	}
	req.Header.Set(clientHeader, t.opts.ClientID)
	if t.opts.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+t.opts.AuthToken)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	// Propagate trace context: the receiving process parents its spans
	// under the caller's current span, stitching the fleet-wide tree.
	if tp := obs.TraceParent(ctx); tp != "" {
		req.Header.Set(wire.TraceHeader, tp)
	}

	t.requests.Add(1)
	t.bytesOut.Add(int64(len(payload)))
	resp, err := t.client.Do(req)
	if err != nil {
		// The caller's context expiring is its own error class — the
		// retry layer must NOT retry it.
		if cerr := ctx.Err(); cerr != nil {
			return nil, "", cerr
		}
		t.unavailableCount.Add(1)
		return nil, "", fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResponse))
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, "", cerr
		}
		t.unavailableCount.Add(1)
		return nil, "", fmt.Errorf("%w: reading response: %v", ErrUnavailable, err)
	}
	t.bytesIn.Add(int64(len(raw)))
	if resp.StatusCode == wantStatus {
		return raw, resp.Header.Get("Content-Type"), nil
	}
	// Negotiation and streamed-execute outcomes the caller handles
	// structurally, ahead of the generic taxonomy.
	switch {
	case resp.StatusCode == http.StatusUnsupportedMediaType:
		return nil, "", fmt.Errorf("%w: %s", errUnsupportedCodec, strings.TrimSpace(string(raw)))
	case resp.StatusCode == http.StatusNotFound && bytes.Contains(raw, []byte(`"`+wire.CodeUnknownExecution+`"`)):
		return nil, "", errUnknownExecution
	}
	return nil, "", t.classify(resp, raw)
}

// maxResponse bounds response bodies (mirror of the server's request cap).
const maxResponse = 64 << 20

// clientHeader mirrors targetserver.ClientHeader without importing the
// server package into every client binary.
const clientHeader = "X-Pace-Client"

// classify maps a non-200 reply onto the pipeline's error taxonomy:
//
//	429                      → ErrOverloaded (transient; server said back off)
//	503 with Retry-After     → ErrOverloaded (transient; rebuild/revival window)
//	other 4xx                → ce.ErrInvalidQuery (permanent; do not retry)
//	other 5xx                → ErrUnavailable (transient)
//
// Shed replies surface as *OverloadError carrying the parsed Retry-After
// hint, so the resilience layer backs off exactly as long as the server
// asked. A bare 503 (no header — e.g. a draining server) stays
// ErrUnavailable: retry against a healthy peer, no mandated wait. The
// server's machine-readable code and message ride along for logs.
func (t *RemoteTarget) classify(resp *http.Response, raw []byte) error {
	var er wire.ErrorResponse
	msg := strings.TrimSpace(string(raw))
	if err := json.Unmarshal(raw, &er); err == nil && er.Error != "" {
		msg = er.Code + ": " + er.Error
	}
	hint := parseRetryAfter(resp.Header.Get("Retry-After"))
	switch {
	case resp.StatusCode == http.StatusTooManyRequests,
		resp.StatusCode == http.StatusServiceUnavailable && hint > 0:
		t.overloaded.Add(1)
		return &OverloadError{Status: resp.StatusCode, RetryAfter: hint,
			Msg: fmt.Sprintf("http %d: %s", resp.StatusCode, msg)}
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		t.invalid.Add(1)
		return fmt.Errorf("%w: http %d: %s", ce.ErrInvalidQuery, resp.StatusCode, msg)
	default:
		t.unavailableCount.Add(1)
		return fmt.Errorf("%w: http %d: %s", ErrUnavailable, resp.StatusCode, msg)
	}
}
