package nn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// SaveParams serializes the parameter values of ps into a compact binary
// blob. The blob records shapes, so LoadParams can verify compatibility.
func SaveParams(ps []*Param) []byte {
	var buf bytes.Buffer
	writeU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	writeU32(uint32(len(ps)))
	for _, p := range ps {
		writeU32(uint32(p.Rows))
		writeU32(uint32(p.Cols))
		for _, w := range p.W {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(w))
			buf.Write(b[:])
		}
	}
	return buf.Bytes()
}

// SaveState serializes the optimizer's moment estimates and step count
// alongside the shapes of the parameters it tracks. Restoring it with
// LoadState (after restoring the parameters themselves) makes a resumed
// training run continue bit-for-bit where the original left off —
// without it, Adam restarts with cold moments and the post-resume
// trajectory diverges from the uninterrupted one.
func (a *Adam) SaveState() []byte {
	var buf bytes.Buffer
	writeU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	writeF64 := func(f float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		buf.Write(b[:])
	}
	writeU32(uint32(a.t))
	writeU32(uint32(len(a.PS)))
	for i, p := range a.PS {
		writeU32(uint32(len(p.W)))
		for _, m := range a.m[i] {
			writeF64(m)
		}
		for _, v := range a.v[i] {
			writeF64(v)
		}
	}
	return buf.Bytes()
}

// LoadState restores optimizer state saved by SaveState. It returns an
// error if the blob does not match the tracked parameter shapes.
func (a *Adam) LoadState(blob []byte) error {
	r := bytes.NewReader(blob)
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	readF64 := func() (float64, error) {
		var b [8]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
	}
	t, err := readU32()
	if err != nil {
		return fmt.Errorf("nn: corrupt adam blob: %w", err)
	}
	n, err := readU32()
	if err != nil {
		return fmt.Errorf("nn: corrupt adam blob: %w", err)
	}
	if int(n) != len(a.PS) {
		return fmt.Errorf("nn: adam blob has %d tensors, want %d", n, len(a.PS))
	}
	for i, p := range a.PS {
		sz, err := readU32()
		if err != nil {
			return fmt.Errorf("nn: corrupt adam blob: %w", err)
		}
		if int(sz) != len(p.W) {
			return fmt.Errorf("nn: adam blob tensor %d has %d values, want %d", i, sz, len(p.W))
		}
		for j := range a.m[i] {
			if a.m[i][j], err = readF64(); err != nil {
				return fmt.Errorf("nn: corrupt adam blob: %w", err)
			}
		}
		for j := range a.v[i] {
			if a.v[i][j], err = readF64(); err != nil {
				return fmt.Errorf("nn: corrupt adam blob: %w", err)
			}
		}
	}
	a.t = int(t)
	return nil
}

// LoadParams writes a blob produced by SaveParams back into ps. It returns
// an error if the shapes recorded in the blob do not match ps.
func LoadParams(ps []*Param, blob []byte) error {
	r := bytes.NewReader(blob)
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	n, err := readU32()
	if err != nil {
		return fmt.Errorf("nn: corrupt param blob: %w", err)
	}
	if int(n) != len(ps) {
		return fmt.Errorf("nn: param blob has %d tensors, want %d", n, len(ps))
	}
	for _, p := range ps {
		rows, err := readU32()
		if err != nil {
			return fmt.Errorf("nn: corrupt param blob: %w", err)
		}
		cols, err := readU32()
		if err != nil {
			return fmt.Errorf("nn: corrupt param blob: %w", err)
		}
		if int(rows) != p.Rows || int(cols) != p.Cols {
			return fmt.Errorf("nn: param %s shape %dx%d, blob has %dx%d",
				p.Name, p.Rows, p.Cols, rows, cols)
		}
		for i := range p.W {
			var b [8]byte
			if _, err := io.ReadFull(r, b[:]); err != nil {
				return fmt.Errorf("nn: corrupt param blob: %w", err)
			}
			p.W[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
		}
	}
	return nil
}
