package nn

import (
	"math/rand"
	"testing"
)

func TestDropoutEvalModeIsIdentity(t *testing.T) {
	d := NewDropout(0.5, rand.New(rand.NewSource(1)))
	x := []float64{1, 2, 3}
	out := d.Forward(x)
	if MaxAbsDiff(out, x) != 0 {
		t.Error("eval-mode dropout is not the identity")
	}
	dy := []float64{0.1, 0.2, 0.3}
	if MaxAbsDiff(d.Backward(dy), dy) != 0 {
		t.Error("eval-mode backward is not the identity")
	}
}

func TestDropoutTrainingZeroesAndScales(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDropout(0.5, rng)
	d.SetTraining(true)
	x := make([]float64, 1000)
	for i := range x {
		x[i] = 1
	}
	out := d.Forward(x)
	zeros, scaled := 0, 0
	for _, v := range out {
		switch v {
		case 0:
			zeros++
		case 2: // 1/(1−0.5)
			scaled++
		default:
			t.Fatalf("unexpected output %g", v)
		}
	}
	if zeros+scaled != len(x) {
		t.Fatal("values unaccounted for")
	}
	if zeros < 400 || zeros > 600 {
		t.Errorf("dropped %d/1000, want ≈500", zeros)
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDropout(0.3, rng)
	d.SetTraining(true)
	x := []float64{1, 1, 1, 1, 1, 1}
	out := d.Forward(x)
	dy := []float64{1, 1, 1, 1, 1, 1}
	dx := d.Backward(dy)
	for i := range dx {
		// Gradient flows exactly where the forward let values through.
		if (out[i] == 0) != (dx[i] == 0) {
			t.Fatalf("mask mismatch at %d: out=%g dx=%g", i, out[i], dx[i])
		}
	}
}

func TestDropoutExpectationPreserved(t *testing.T) {
	// Inverted dropout keeps E[output] = input.
	rng := rand.New(rand.NewSource(4))
	d := NewDropout(0.4, rng)
	d.SetTraining(true)
	x := []float64{1}
	var sum float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		sum += d.Forward(x)[0]
	}
	mean := sum / trials
	if mean < 0.95 || mean > 1.05 {
		t.Errorf("E[output] = %.3f, want ≈1", mean)
	}
}

func TestTrainingModeFlipsMLPDropouts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := &MLP{Layers: []Layer{
		NewDense("d", 3, 3, rng),
		NewDropout(0.9, rng),
	}}
	x := []float64{1, 1, 1}
	TrainingMode(false, m)
	a := CopyOf(m.Forward(x))
	b := m.Forward(x)
	if MaxAbsDiff(a, b) != 0 {
		t.Error("eval mode should be deterministic")
	}
	TrainingMode(true, m)
	sawDiff := false
	for i := 0; i < 10 && !sawDiff; i++ {
		if MaxAbsDiff(a, m.Forward(x)) != 0 {
			sawDiff = true
		}
	}
	if !sawDiff {
		t.Error("training mode never produced a different output at P=0.9")
	}
}
