package nn

import "math/rand"

// Dropout randomly zeroes a fraction P of its inputs during training,
// scaling the survivors by 1/(1−P) (inverted dropout), and is the
// identity in evaluation mode. Training mode is off by default; callers
// flip it with SetTraining around optimization steps.
type Dropout struct {
	P   float64
	rng *rand.Rand

	training bool
	mask     []float64
}

// NewDropout creates a dropout layer with drop probability p.
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	return &Dropout{P: p, rng: rng}
}

// SetTraining switches between the stochastic training behaviour and the
// deterministic identity.
func (d *Dropout) SetTraining(on bool) { d.training = on }

// Params implements Module; dropout is parameter-free.
func (d *Dropout) Params() []*Param { return nil }

// OutSize implements Layer.
func (d *Dropout) OutSize(in int) int { return in }

// Forward applies the mask in training mode, identity otherwise.
func (d *Dropout) Forward(x []float64) []float64 {
	if !d.training || d.P <= 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.P
	out := make([]float64, len(x))
	d.mask = make([]float64, len(x))
	for i, v := range x {
		if d.rng.Float64() < keep {
			d.mask[i] = 1 / keep
			out[i] = v / keep
		}
	}
	return out
}

// Backward routes gradients through the cached mask.
func (d *Dropout) Backward(dy []float64) []float64 {
	if d.mask == nil {
		return dy
	}
	dx := make([]float64, len(dy))
	for i, g := range dy {
		dx[i] = g * d.mask[i]
	}
	return dx
}

var _ Layer = (*Dropout)(nil)

// TrainingMode recursively flips the training flag of every Dropout layer
// inside the MLPs of ms.
func TrainingMode(on bool, ms ...*MLP) {
	for _, m := range ms {
		for _, l := range m.Layers {
			if d, ok := l.(*Dropout); ok {
				d.SetTraining(on)
			}
		}
	}
}
