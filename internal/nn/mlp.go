package nn

import "math/rand"

// MLP is a sequential stack of layers.
type MLP struct {
	Layers []Layer
}

// NewMLP builds a dense network with the given layer sizes, e.g.
// sizes = [8, 64, 64, 1] builds 8→64→64→1. Hidden layers use the given
// hidden activation; the output layer uses outAct (which may be nil for a
// purely linear head).
func NewMLP(name string, sizes []int, hidden func() *Activation, outAct func() *Activation, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least an input and output size")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewDense(denseName(name, i), sizes[i], sizes[i+1], rng))
		last := i+2 == len(sizes)
		if last {
			if outAct != nil {
				m.Layers = append(m.Layers, outAct())
			}
		} else if hidden != nil {
			m.Layers = append(m.Layers, hidden())
		}
	}
	return m
}

func denseName(name string, i int) string {
	return name + "." + string(rune('0'+i))
}

// Params implements Module.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// OutSize implements Layer.
func (m *MLP) OutSize(in int) int {
	for _, l := range m.Layers {
		in = l.OutSize(in)
	}
	return in
}

// Forward runs x through every layer.
func (m *MLP) Forward(x []float64) []float64 {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates dy back through every layer, accumulating parameter
// gradients, and returns dL/dx.
func (m *MLP) Backward(dy []float64) []float64 {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		dy = m.Layers[i].Backward(dy)
	}
	return dy
}

var _ Layer = (*MLP)(nil)
