package nn

import (
	"math"
	"math/rand"
)

// Param is a learnable tensor stored flat, with an accumulated gradient of
// the same shape. A Param with Rows*Cols == len(W) is a matrix; a Param
// with Rows == len(W), Cols == 1 is a vector (bias).
type Param struct {
	Name string
	W    []float64 // values, row-major
	G    []float64 // accumulated gradient dL/dW
	Rows int
	Cols int
}

// NewParam allocates a zero-valued rows×cols parameter.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name: name,
		W:    make([]float64, rows*cols),
		G:    make([]float64, rows*cols),
		Rows: rows,
		Cols: cols,
	}
}

// GlorotInit fills p.W with Glorot/Xavier-uniform values appropriate for a
// rows×cols dense weight (fanOut×fanIn).
func (p *Param) GlorotInit(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(p.Rows+p.Cols))
	for i := range p.W {
		p.W[i] = (rng.Float64()*2 - 1) * limit
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { Zero(p.G) }

// At returns the matrix element at (r, c).
func (p *Param) At(r, c int) float64 { return p.W[r*p.Cols+c] }

// Module is anything that owns parameters.
type Module interface {
	// Params returns the module's learnable parameters. The returned
	// slice must be stable: the same *Param pointers every call.
	Params() []*Param
}

// ParamsOf flattens the parameters of several modules into one slice.
func ParamsOf(ms ...Module) []*Param {
	var out []*Param
	for _, m := range ms {
		out = append(out, m.Params()...)
	}
	return out
}

// NumParams returns the total scalar parameter count of ps.
func NumParams(ps []*Param) int {
	n := 0
	for _, p := range ps {
		n += len(p.W)
	}
	return n
}

// ZeroGrads clears the gradient of every parameter in ps.
func ZeroGrads(ps []*Param) {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// FlattenParams copies all parameter values into a single vector.
func FlattenParams(ps []*Param) []float64 {
	out := make([]float64, 0, NumParams(ps))
	for _, p := range ps {
		out = append(out, p.W...)
	}
	return out
}

// FlattenGrads copies all parameter gradients into a single vector.
func FlattenGrads(ps []*Param) []float64 {
	out := make([]float64, 0, NumParams(ps))
	for _, p := range ps {
		out = append(out, p.G...)
	}
	return out
}

// SetParams writes the flat vector v back into the parameters. It panics
// if len(v) does not match the total parameter count.
func SetParams(ps []*Param, v []float64) {
	i := 0
	for _, p := range ps {
		copy(p.W, v[i:i+len(p.W)])
		i += len(p.W)
	}
	if i != len(v) {
		panic("nn: SetParams length mismatch")
	}
}

// AddToParams adds scale*v to the flat parameter vector in place.
func AddToParams(ps []*Param, scale float64, v []float64) {
	i := 0
	for _, p := range ps {
		for j := range p.W {
			p.W[j] += scale * v[i]
			i++
		}
	}
	if i != len(v) {
		panic("nn: AddToParams length mismatch")
	}
}

// Snapshot captures the current values of ps so they can be restored later
// (used for the temporary poisoned-model updates of Algorithm 1).
type Snapshot struct{ values [][]float64 }

// TakeSnapshot copies the current parameter values.
func TakeSnapshot(ps []*Param) *Snapshot {
	s := &Snapshot{values: make([][]float64, len(ps))}
	for i, p := range ps {
		s.values[i] = CopyOf(p.W)
	}
	return s
}

// Restore writes the snapshot back into ps. The parameter list must be the
// same one the snapshot was taken from (same order and shapes).
func (s *Snapshot) Restore(ps []*Param) {
	if len(ps) != len(s.values) {
		panic("nn: Snapshot.Restore param count mismatch")
	}
	for i, p := range ps {
		copy(p.W, s.values[i])
	}
}
