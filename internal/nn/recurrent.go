package nn

import (
	"math"
	"math/rand"
)

// SeqModule is a differentiable sequence→vector map: it consumes a
// sequence of input vectors and produces the final hidden state.
// BackwardSeq must be called immediately after the ForwardSeq whose cached
// state it consumes.
type SeqModule interface {
	Module
	ForwardSeq(xs [][]float64) []float64
	BackwardSeq(dh []float64) [][]float64
	HiddenSize() int
}

// RNN is a single-layer Elman recurrent network:
// h_t = tanh(Wx·x_t + Wh·h_{t-1} + b).
type RNN struct {
	Wx *Param // hidden×in
	Wh *Param // hidden×hidden
	B  *Param // hidden×1

	xs [][]float64
	hs [][]float64 // hs[0] is the zero initial state; hs[t+1] for step t
}

// NewRNN creates a Glorot-initialized in→hidden recurrent cell.
func NewRNN(name string, in, hidden int, rng *rand.Rand) *RNN {
	r := &RNN{
		Wx: NewParam(name+".Wx", hidden, in),
		Wh: NewParam(name+".Wh", hidden, hidden),
		B:  NewParam(name+".b", hidden, 1),
	}
	r.Wx.GlorotInit(rng)
	r.Wh.GlorotInit(rng)
	return r
}

// Params implements Module.
func (r *RNN) Params() []*Param { return []*Param{r.Wx, r.Wh, r.B} }

// HiddenSize implements SeqModule.
func (r *RNN) HiddenSize() int { return r.Wx.Rows }

// ForwardSeq processes the sequence and returns the final hidden state.
func (r *RNN) ForwardSeq(xs [][]float64) []float64 {
	h := r.Wx.Rows
	r.xs = xs
	r.hs = make([][]float64, len(xs)+1)
	r.hs[0] = make([]float64, h)
	for t, x := range xs {
		prev := r.hs[t]
		cur := make([]float64, h)
		for i := 0; i < h; i++ {
			a := r.B.W[i]
			a += Dot(r.Wx.W[i*r.Wx.Cols:(i+1)*r.Wx.Cols], x)
			a += Dot(r.Wh.W[i*h:(i+1)*h], prev)
			cur[i] = math.Tanh(a)
		}
		r.hs[t+1] = cur
	}
	return r.hs[len(xs)]
}

// BackwardSeq backpropagates through time from the final hidden state
// gradient dh, accumulating parameter gradients, and returns dL/dx per step.
func (r *RNN) BackwardSeq(dh []float64) [][]float64 {
	h := r.Wx.Rows
	dxs := make([][]float64, len(r.xs))
	dhCur := CopyOf(dh)
	for t := len(r.xs) - 1; t >= 0; t-- {
		cur := r.hs[t+1]
		prev := r.hs[t]
		x := r.xs[t]
		da := make([]float64, h) // gradient w.r.t. pre-activation
		for i := 0; i < h; i++ {
			da[i] = dhCur[i] * (1 - cur[i]*cur[i])
		}
		dx := make([]float64, len(x))
		dhPrev := make([]float64, h)
		for i := 0; i < h; i++ {
			g := da[i]
			r.B.G[i] += g
			AddScaled(r.Wx.G[i*r.Wx.Cols:(i+1)*r.Wx.Cols], g, x)
			AddScaled(r.Wh.G[i*h:(i+1)*h], g, prev)
			AddScaled(dx, g, r.Wx.W[i*r.Wx.Cols:(i+1)*r.Wx.Cols])
			AddScaled(dhPrev, g, r.Wh.W[i*h:(i+1)*h])
		}
		dxs[t] = dx
		dhCur = dhPrev
	}
	return dxs
}

// LSTM is a single-layer long short-term memory cell with standard gates:
//
//	i = σ(Wi·[x,h]+bi), f = σ(Wf·[x,h]+bf), o = σ(Wo·[x,h]+bo),
//	g = tanh(Wg·[x,h]+bg), c' = f*c + i*g, h' = o*tanh(c').
type LSTM struct {
	Wi, Wf, Wo, Wg *Param // hidden×(in+hidden)
	Bi, Bf, Bo, Bg *Param // hidden×1

	in    int
	steps []lstmStep
}

type lstmStep struct {
	x, hPrev, cPrev []float64
	i, f, o, g      []float64
	c, tc, h        []float64 // cell state, tanh(cell), hidden
}

// NewLSTM creates a Glorot-initialized in→hidden LSTM. The forget-gate bias
// is initialized to 1, the usual trick to ease gradient flow early in
// training.
func NewLSTM(name string, in, hidden int, rng *rand.Rand) *LSTM {
	mk := func(suffix string) *Param {
		p := NewParam(name+"."+suffix, hidden, in+hidden)
		p.GlorotInit(rng)
		return p
	}
	l := &LSTM{
		Wi: mk("Wi"), Wf: mk("Wf"), Wo: mk("Wo"), Wg: mk("Wg"),
		Bi: NewParam(name+".bi", hidden, 1),
		Bf: NewParam(name+".bf", hidden, 1),
		Bo: NewParam(name+".bo", hidden, 1),
		Bg: NewParam(name+".bg", hidden, 1),
		in: in,
	}
	for i := range l.Bf.W {
		l.Bf.W[i] = 1
	}
	return l
}

// Params implements Module.
func (l *LSTM) Params() []*Param {
	return []*Param{l.Wi, l.Wf, l.Wo, l.Wg, l.Bi, l.Bf, l.Bo, l.Bg}
}

// HiddenSize implements SeqModule.
func (l *LSTM) HiddenSize() int { return l.Wi.Rows }

func gateForward(w *Param, b *Param, xh []float64, act func(float64) float64) []float64 {
	h := w.Rows
	out := make([]float64, h)
	for i := 0; i < h; i++ {
		out[i] = act(Dot(w.W[i*w.Cols:(i+1)*w.Cols], xh) + b.W[i])
	}
	return out
}

// ForwardSeq processes the sequence and returns the final hidden state.
func (l *LSTM) ForwardSeq(xs [][]float64) []float64 {
	h := l.Wi.Rows
	l.steps = l.steps[:0]
	hPrev := make([]float64, h)
	cPrev := make([]float64, h)
	for _, x := range xs {
		xh := make([]float64, 0, l.in+h)
		xh = append(xh, x...)
		xh = append(xh, hPrev...)
		st := lstmStep{x: x, hPrev: hPrev, cPrev: cPrev}
		st.i = gateForward(l.Wi, l.Bi, xh, Sigmoid)
		st.f = gateForward(l.Wf, l.Bf, xh, Sigmoid)
		st.o = gateForward(l.Wo, l.Bo, xh, Sigmoid)
		st.g = gateForward(l.Wg, l.Bg, xh, math.Tanh)
		st.c = make([]float64, h)
		st.tc = make([]float64, h)
		st.h = make([]float64, h)
		for j := 0; j < h; j++ {
			st.c[j] = st.f[j]*cPrev[j] + st.i[j]*st.g[j]
			st.tc[j] = math.Tanh(st.c[j])
			st.h[j] = st.o[j] * st.tc[j]
		}
		l.steps = append(l.steps, st)
		hPrev, cPrev = st.h, st.c
	}
	return hPrev
}

// BackwardSeq backpropagates through time from the final hidden state
// gradient, accumulating parameter gradients, and returns dL/dx per step.
func (l *LSTM) BackwardSeq(dh []float64) [][]float64 {
	h := l.Wi.Rows
	dxs := make([][]float64, len(l.steps))
	dhCur := CopyOf(dh)
	dcCur := make([]float64, h)
	for t := len(l.steps) - 1; t >= 0; t-- {
		st := l.steps[t]
		xh := make([]float64, 0, l.in+h)
		xh = append(xh, st.x...)
		xh = append(xh, st.hPrev...)
		dxh := make([]float64, l.in+h)
		dcPrev := make([]float64, h)
		for j := 0; j < h; j++ {
			do := dhCur[j] * st.tc[j]
			dc := dhCur[j]*st.o[j]*(1-st.tc[j]*st.tc[j]) + dcCur[j]
			di := dc * st.g[j]
			df := dc * st.cPrev[j]
			dg := dc * st.i[j]
			dcPrev[j] = dc * st.f[j]

			dai := di * SigmoidPrime(st.i[j])
			daf := df * SigmoidPrime(st.f[j])
			dao := do * SigmoidPrime(st.o[j])
			dag := dg * (1 - st.g[j]*st.g[j])

			accum := func(w *Param, b *Param, da float64) {
				b.G[j] += da
				AddScaled(w.G[j*w.Cols:(j+1)*w.Cols], da, xh)
				AddScaled(dxh, da, w.W[j*w.Cols:(j+1)*w.Cols])
			}
			accum(l.Wi, l.Bi, dai)
			accum(l.Wf, l.Bf, daf)
			accum(l.Wo, l.Bo, dao)
			accum(l.Wg, l.Bg, dag)
		}
		dxs[t] = CopyOf(dxh[:l.in])
		dhCur = CopyOf(dxh[l.in:])
		dcCur = dcPrev
	}
	return dxs
}

var (
	_ SeqModule = (*RNN)(nil)
	_ SeqModule = (*LSTM)(nil)
)
