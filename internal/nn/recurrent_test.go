package nn

import (
	"math/rand"
	"testing"
)

func checkSeqGradients(t *testing.T, m SeqModule, in, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	xs := make([][]float64, steps)
	for i := range xs {
		xs[i] = make([]float64, in)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
	}

	f := func() float64 { return scalarLoss(m.ForwardSeq(xs)) }

	ZeroGrads(m.Params())
	out := m.ForwardSeq(xs)
	dxs := m.BackwardSeq(lossGrad(out))

	analytic := FlattenGrads(m.Params())
	numeric := NumericGrad(f, m.Params(), 1e-5)
	if d := MaxAbsDiff(analytic, numeric); d > gradTol {
		t.Errorf("parameter gradient mismatch: max diff %g", d)
	}

	for ti := range xs {
		tt := ti
		fx := func() float64 { return scalarLoss(m.ForwardSeq(xs)) }
		numericX := NumericInputGrad(fx, xs[tt], 1e-5)
		if d := MaxAbsDiff(dxs[tt], numericX); d > gradTol {
			t.Errorf("input gradient mismatch at step %d: max diff %g", tt, d)
		}
	}
}

func TestRNNGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	checkSeqGradients(t, NewRNN("r", 3, 4, rng), 3, 4)
}

func TestLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	checkSeqGradients(t, NewLSTM("l", 3, 4, rng), 3, 3)
}

func TestRNNHiddenSize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := NewRNN("r", 2, 5, rng)
	if r.HiddenSize() != 5 {
		t.Errorf("HiddenSize = %d, want 5", r.HiddenSize())
	}
	h := r.ForwardSeq([][]float64{{1, 2}})
	if len(h) != 5 {
		t.Errorf("hidden state size = %d, want 5", len(h))
	}
}

func TestLSTMForgetBiasInit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewLSTM("l", 2, 3, rng)
	for i, b := range l.Bf.W {
		if b != 1 {
			t.Errorf("forget bias[%d] = %g, want 1", i, b)
		}
	}
}

func TestLSTMEmptySequence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewLSTM("l", 2, 3, rng)
	h := l.ForwardSeq(nil)
	for _, v := range h {
		if v != 0 {
			t.Errorf("empty-sequence hidden state = %v, want zeros", h)
			break
		}
	}
}

func TestRNNDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	r := NewRNN("r", 2, 3, rng)
	xs := [][]float64{{0.1, 0.2}, {0.3, -0.4}}
	h1 := CopyOf(r.ForwardSeq(xs))
	h2 := r.ForwardSeq(xs)
	if MaxAbsDiff(h1, h2) != 0 {
		t.Error("ForwardSeq is not deterministic for identical inputs")
	}
}
