package nn

import (
	"math"
	"math/rand"
	"testing"
)

// trainQuadratic minimizes f(w) = ||w - target||^2 with the given optimizer
// constructor and returns the final distance to the target.
func trainQuadratic(t *testing.T, mkOpt func(ps []*Param) Optimizer, steps int) float64 {
	t.Helper()
	p := NewParam("w", 4, 1)
	target := []float64{1, -2, 3, 0.5}
	opt := mkOpt([]*Param{p})
	for i := 0; i < steps; i++ {
		for j := range p.W {
			p.G[j] = 2 * (p.W[j] - target[j])
		}
		opt.Step(1)
	}
	var d float64
	for j := range p.W {
		d += (p.W[j] - target[j]) * (p.W[j] - target[j])
	}
	return math.Sqrt(d)
}

func TestSGDConverges(t *testing.T) {
	d := trainQuadratic(t, func(ps []*Param) Optimizer { return NewSGD(ps, 0.1) }, 200)
	if d > 1e-3 {
		t.Errorf("SGD final distance %g, want < 1e-3", d)
	}
}

func TestAdamConverges(t *testing.T) {
	d := trainQuadratic(t, func(ps []*Param) Optimizer { return NewAdam(ps, 0.05) }, 500)
	if d > 1e-3 {
		t.Errorf("Adam final distance %g, want < 1e-3", d)
	}
}

func TestStepZeroesGradients(t *testing.T) {
	p := NewParam("w", 2, 1)
	p.G[0], p.G[1] = 1, 2
	NewAdam([]*Param{p}, 0.01).Step(1)
	if p.G[0] != 0 || p.G[1] != 0 {
		t.Errorf("gradients not zeroed after Step: %v", p.G)
	}
}

func TestGradientClipping(t *testing.T) {
	p := NewParam("w", 1, 1)
	p.G[0] = 1e6
	s := &SGD{PS: []*Param{p}, LR: 1, Clip: 1}
	s.Step(1)
	// With clipping to norm 1 the update magnitude is exactly LR*1.
	if math.Abs(p.W[0]) != 1 {
		t.Errorf("clipped update = %g, want magnitude 1", p.W[0])
	}
}

func TestClipDisabled(t *testing.T) {
	p := NewParam("w", 1, 1)
	p.G[0] = 10
	s := &SGD{PS: []*Param{p}, LR: 0.1, Clip: 0}
	s.Step(1)
	if math.Abs(p.W[0]+1) > 1e-12 {
		t.Errorf("unclipped update = %g, want -1", p.W[0])
	}
}

func TestSnapshotRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	m := NewMLP("m", []int{3, 4, 1}, NewTanh, nil, rng)
	ps := m.Params()
	before := FlattenParams(ps)
	snap := TakeSnapshot(ps)
	AddToParams(ps, 1, onesLike(before))
	if MaxAbsDiff(FlattenParams(ps), before) == 0 {
		t.Fatal("parameters unchanged after AddToParams")
	}
	snap.Restore(ps)
	if MaxAbsDiff(FlattenParams(ps), before) != 0 {
		t.Error("Restore did not recover original parameters")
	}
}

func TestSetParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := NewMLP("m", []int{2, 3, 1}, NewReLU, nil, rng)
	ps := m.Params()
	v := FlattenParams(ps)
	for i := range v {
		v[i] += 0.5
	}
	SetParams(ps, v)
	if MaxAbsDiff(FlattenParams(ps), v) != 0 {
		t.Error("SetParams/FlattenParams round trip mismatch")
	}
}

func TestSaveLoadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m1 := NewMLP("m", []int{3, 5, 2}, NewSigmoid, nil, rng)
	m2 := NewMLP("m", []int{3, 5, 2}, NewSigmoid, nil, rand.New(rand.NewSource(99)))
	blob := SaveParams(m1.Params())
	if err := LoadParams(m2.Params(), blob); err != nil {
		t.Fatalf("LoadParams: %v", err)
	}
	if MaxAbsDiff(FlattenParams(m1.Params()), FlattenParams(m2.Params())) != 0 {
		t.Error("loaded parameters differ from saved")
	}
}

func TestLoadParamsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m1 := NewMLP("m", []int{3, 5, 2}, nil, nil, rng)
	m2 := NewMLP("m", []int{3, 4, 2}, nil, nil, rng)
	blob := SaveParams(m1.Params())
	if err := LoadParams(m2.Params(), blob); err == nil {
		t.Error("expected shape-mismatch error, got nil")
	}
}

func TestLoadParamsCorruptBlob(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m := NewMLP("m", []int{2, 2}, nil, nil, rng)
	if err := LoadParams(m.Params(), []byte{1, 2, 3}); err == nil {
		t.Error("expected error for truncated blob, got nil")
	}
}

func onesLike(v []float64) []float64 {
	out := make([]float64, len(v))
	for i := range out {
		out[i] = 1
	}
	return out
}
