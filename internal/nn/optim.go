package nn

import "math"

// Optimizer applies accumulated gradients to parameters.
type Optimizer interface {
	// Step applies one update from the accumulated gradients, then
	// zeroes them. scale is multiplied into every gradient first
	// (callers typically pass 1/batchSize).
	Step(scale float64)
	// LearningRate reports the optimizer's base learning rate.
	LearningRate() float64
}

// SGD is plain stochastic gradient descent, optionally with gradient-norm
// clipping (Clip <= 0 disables clipping).
type SGD struct {
	PS   []*Param
	LR   float64
	Clip float64
}

// NewSGD creates an SGD optimizer over ps.
func NewSGD(ps []*Param, lr float64) *SGD { return &SGD{PS: ps, LR: lr, Clip: 5} }

// LearningRate implements Optimizer.
func (s *SGD) LearningRate() float64 { return s.LR }

// Step implements Optimizer.
func (s *SGD) Step(scale float64) {
	clip := clipFactor(s.PS, scale, s.Clip)
	for _, p := range s.PS {
		for i := range p.W {
			p.W[i] -= s.LR * scale * clip * p.G[i]
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba 2014), the optimizer the paper
// uses for every model, with optional gradient-norm clipping.
type Adam struct {
	PS    []*Param
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	Clip  float64

	m, v [][]float64
	t    int
}

// NewAdam creates an Adam optimizer with the standard β=(0.9, 0.999),
// ε=1e-8 hyperparameters.
func NewAdam(ps []*Param, lr float64) *Adam {
	a := &Adam{PS: ps, LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Clip: 5}
	a.m = make([][]float64, len(ps))
	a.v = make([][]float64, len(ps))
	for i, p := range ps {
		a.m[i] = make([]float64, len(p.W))
		a.v[i] = make([]float64, len(p.W))
	}
	return a
}

// LearningRate implements Optimizer.
func (a *Adam) LearningRate() float64 { return a.LR }

// Step implements Optimizer.
func (a *Adam) Step(scale float64) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	clip := clipFactor(a.PS, scale, a.Clip)
	for i, p := range a.PS {
		m, v := a.m[i], a.v[i]
		for j := range p.W {
			g := p.G[j] * scale * clip
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / bc1
			vh := v[j] / bc2
			p.W[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// clipFactor returns the multiplier that caps the global scaled gradient
// norm at clip (1 when already within bounds or clipping is disabled).
func clipFactor(ps []*Param, scale, clip float64) float64 {
	if clip <= 0 {
		return 1
	}
	var sq float64
	for _, p := range ps {
		for _, g := range p.G {
			sg := g * scale
			sq += sg * sg
		}
	}
	norm := math.Sqrt(sq)
	if norm <= clip || norm == 0 {
		return 1
	}
	return clip / norm
}
