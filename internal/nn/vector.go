// Package nn is a small, dependency-free neural-network engine.
//
// It provides the building blocks the PACE reproduction needs: dense and
// recurrent layers with backpropagation to both parameters and inputs,
// Adam/SGD optimizers, parameter snapshotting (for the temporary
// one-step-unrolled CE updates of Algorithm 1), and finite-difference
// Hessian-vector products (for the bivariate-optimization hypergradient).
//
// The engine is deliberately slice-based rather than tensor-based: every
// model in the paper (the six CE estimators, the three sub-generators and
// the VAE detector) is a small MLP or single-layer recurrent net, so
// per-sample forward/backward with gradient accumulation is both simple
// and fast enough.
package nn

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics if lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("nn: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AddScaled adds scale*src to dst element-wise. It panics if lengths differ.
func AddScaled(dst []float64, scale float64, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("nn: AddScaled length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += scale * v
	}
}

// Scale multiplies every element of v by s in place.
func Scale(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Zero sets every element of v to 0.
func Zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// CopyOf returns a fresh copy of v.
func CopyOf(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Clamp returns x restricted to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Sigmoid returns 1/(1+e^-x), computed stably for large |x|.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// SigmoidPrime returns the derivative of Sigmoid expressed in terms of the
// output y = Sigmoid(x).
func SigmoidPrime(y float64) float64 { return y * (1 - y) }
