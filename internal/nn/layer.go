package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is a differentiable vector→vector map. Backward must be called
// immediately after the Forward whose cached state it consumes; it
// accumulates parameter gradients and returns dL/dx.
type Layer interface {
	Module
	Forward(x []float64) []float64
	Backward(dy []float64) []float64
	// OutSize reports the output dimension given an input dimension.
	OutSize(in int) int
}

// Dense is a fully connected affine layer y = Wx + b.
type Dense struct {
	W *Param // out×in
	B *Param // out×1
	x []float64
}

// NewDense creates a Glorot-initialized in→out dense layer.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		W: NewParam(name+".W", out, in),
		B: NewParam(name+".b", out, 1),
	}
	d.W.GlorotInit(rng)
	return d
}

// Params implements Module.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// OutSize implements Layer.
func (d *Dense) OutSize(int) int { return d.W.Rows }

// Forward computes Wx + b.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.W.Cols {
		panic(fmt.Sprintf("nn: Dense %s input %d, want %d", d.W.Name, len(x), d.W.Cols))
	}
	d.x = x
	out := make([]float64, d.W.Rows)
	for r := 0; r < d.W.Rows; r++ {
		row := d.W.W[r*d.W.Cols : (r+1)*d.W.Cols]
		out[r] = Dot(row, x) + d.B.W[r]
	}
	return out
}

// Backward accumulates dL/dW, dL/db and returns dL/dx.
func (d *Dense) Backward(dy []float64) []float64 {
	dx := make([]float64, d.W.Cols)
	for r, g := range dy {
		row := d.W.W[r*d.W.Cols : (r+1)*d.W.Cols]
		grow := d.W.G[r*d.W.Cols : (r+1)*d.W.Cols]
		AddScaled(grow, g, d.x)
		AddScaled(dx, g, row)
		d.B.G[r] += g
	}
	return dx
}

// Activation applies an element-wise nonlinearity.
type Activation struct {
	kind activationKind
	y    []float64 // cached outputs
	x    []float64 // cached inputs (needed by ReLU/LeakyReLU)
}

type activationKind int

const (
	actSigmoid activationKind = iota
	actTanh
	actReLU
	actLeakyReLU
)

// NewSigmoid returns an element-wise logistic activation.
func NewSigmoid() *Activation { return &Activation{kind: actSigmoid} }

// NewTanh returns an element-wise tanh activation.
func NewTanh() *Activation { return &Activation{kind: actTanh} }

// NewReLU returns an element-wise rectified-linear activation.
func NewReLU() *Activation { return &Activation{kind: actReLU} }

// NewLeakyReLU returns max(x, 0.01x).
func NewLeakyReLU() *Activation { return &Activation{kind: actLeakyReLU} }

// Params implements Module; activations are parameter-free.
func (a *Activation) Params() []*Param { return nil }

// OutSize implements Layer.
func (a *Activation) OutSize(in int) int { return in }

// Forward applies the nonlinearity element-wise.
func (a *Activation) Forward(x []float64) []float64 {
	a.x = x
	out := make([]float64, len(x))
	switch a.kind {
	case actSigmoid:
		for i, v := range x {
			out[i] = Sigmoid(v)
		}
	case actTanh:
		for i, v := range x {
			out[i] = math.Tanh(v)
		}
	case actReLU:
		for i, v := range x {
			if v > 0 {
				out[i] = v
			}
		}
	case actLeakyReLU:
		for i, v := range x {
			if v > 0 {
				out[i] = v
			} else {
				out[i] = 0.01 * v
			}
		}
	}
	a.y = out
	return out
}

// Backward returns dL/dx for the cached activation.
func (a *Activation) Backward(dy []float64) []float64 {
	dx := make([]float64, len(dy))
	switch a.kind {
	case actSigmoid:
		for i, g := range dy {
			dx[i] = g * SigmoidPrime(a.y[i])
		}
	case actTanh:
		for i, g := range dy {
			dx[i] = g * (1 - a.y[i]*a.y[i])
		}
	case actReLU:
		for i, g := range dy {
			if a.x[i] > 0 {
				dx[i] = g
			}
		}
	case actLeakyReLU:
		for i, g := range dy {
			if a.x[i] > 0 {
				dx[i] = g
			} else {
				dx[i] = 0.01 * g
			}
		}
	}
	return dx
}
