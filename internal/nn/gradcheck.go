package nn

// NumericGrad estimates the gradient of f with respect to every parameter
// in ps by central finite differences. f must be a pure function of the
// current parameter values. Used by tests to validate analytic backprop.
func NumericGrad(f func() float64, ps []*Param, eps float64) []float64 {
	out := make([]float64, 0, NumParams(ps))
	for _, p := range ps {
		for i := range p.W {
			orig := p.W[i]
			p.W[i] = orig + eps
			fp := f()
			p.W[i] = orig - eps
			fm := f()
			p.W[i] = orig
			out = append(out, (fp-fm)/(2*eps))
		}
	}
	return out
}

// NumericInputGrad estimates the gradient of f with respect to the entries
// of x by central finite differences. f must read x on every call.
func NumericInputGrad(f func() float64, x []float64, eps float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		fp := f()
		x[i] = orig - eps
		fm := f()
		x[i] = orig
		out[i] = (fp - fm) / (2 * eps)
	}
	return out
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// a and b; it panics if lengths differ.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("nn: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
