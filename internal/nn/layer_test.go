package nn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

const gradTol = 1e-6

// scalarLoss squares-and-sums the output of a layer so both parameter and
// input gradients are exercised through a nontrivial loss.
func scalarLoss(out []float64) float64 {
	var s float64
	for _, v := range out {
		s += v * v
	}
	return 0.5 * s
}

func lossGrad(out []float64) []float64 { return CopyOf(out) }

func checkLayerGradients(t *testing.T, l Layer, in int) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, in)
	for i := range x {
		x[i] = rng.NormFloat64()
	}

	f := func() float64 { return scalarLoss(l.Forward(x)) }

	ZeroGrads(l.Params())
	out := l.Forward(x)
	dx := l.Backward(lossGrad(out))

	analytic := FlattenGrads(l.Params())
	numeric := NumericGrad(f, l.Params(), 1e-5)
	if d := MaxAbsDiff(analytic, numeric); d > gradTol {
		t.Errorf("parameter gradient mismatch: max diff %g", d)
	}

	numericX := NumericInputGrad(f, x, 1e-5)
	if d := MaxAbsDiff(dx, numericX); d > gradTol {
		t.Errorf("input gradient mismatch: max diff %g", d)
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	checkLayerGradients(t, NewDense("d", 5, 3, rng), 5)
}

func TestActivationGradients(t *testing.T) {
	cases := map[string]func() *Activation{
		"sigmoid":   NewSigmoid,
		"tanh":      NewTanh,
		"relu":      NewReLU,
		"leakyrelu": NewLeakyReLU,
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) { checkLayerGradients(t, mk(), 6) })
	}
}

func TestMLPGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP("m", []int{4, 8, 8, 2}, NewTanh, NewSigmoid, rng)
	checkLayerGradients(t, m, 4)
}

func TestMLPLinearHead(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP("m", []int{3, 5, 1}, NewReLU, nil, rng)
	out := m.Forward([]float64{1, -2, 0.5})
	if len(out) != 1 {
		t.Fatalf("output size = %d, want 1", len(out))
	}
	if got := m.OutSize(3); got != 1 {
		t.Errorf("OutSize = %d, want 1", got)
	}
}

func TestDenseForwardKnownValues(t *testing.T) {
	d := &Dense{W: NewParam("w", 2, 2), B: NewParam("b", 2, 1)}
	copy(d.W.W, []float64{1, 2, 3, 4})
	copy(d.B.W, []float64{0.5, -0.5})
	out := d.Forward([]float64{1, 1})
	want := []float64{3.5, 6.5}
	if MaxAbsDiff(out, want) > 1e-12 {
		t.Errorf("Forward = %v, want %v", out, want)
	}
}

func TestDensePanicsOnSizeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDense("d", 3, 2, rng)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong input size")
		}
	}()
	d.Forward([]float64{1, 2})
}

func TestSigmoidProperties(t *testing.T) {
	// Sigmoid output is always in (0,1) and symmetric: σ(-x) = 1-σ(x).
	f := func(x float64) bool {
		if x > 500 {
			x = 500
		}
		if x < -500 {
			x = -500
		}
		y := Sigmoid(x)
		if y < 0 || y > 1 {
			return false
		}
		return abs(Sigmoid(-x)-(1-y)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
