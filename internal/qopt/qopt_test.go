package qopt

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"pace/internal/dataset"
	"pace/internal/engine"
	"pace/internal/query"
	"pace/internal/workload"
)

func optSetup(t *testing.T, name string, seed int64) (*Optimizer, *workload.Generator) {
	t.Helper()
	ds, err := dataset.Build(name, dataset.Config{Scale: 0.1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(ds)
	return New(ds, eng), workload.NewGenerator(ds, eng, rand.New(rand.NewSource(seed)))
}

// multiJoinQuery builds a 3-table chain query on tpch:
// lineitem ⋈ orders ⋈ customer with a couple of predicates.
func multiJoinQuery(t *testing.T, o *Optimizer) *query.Query {
	t.Helper()
	ds := o.ds
	q := query.New(ds.Meta)
	for _, name := range []string{"lineitem", "orders", "customer"} {
		idx := ds.TableIndex(name)
		if idx < 0 {
			t.Fatalf("table %s missing", name)
		}
		q.Tables[idx] = true
	}
	lo, _ := ds.Meta.Attrs(ds.TableIndex("orders"))
	q.Bounds[lo] = [2]float64{0, 0.4}
	q.Normalize(ds.Meta)
	return q
}

func TestPlanWithTrueCardinalities(t *testing.T) {
	o, _ := optSetup(t, "tpch", 1)
	q := multiJoinQuery(t, o)
	p, err := o.Plan(q, o.TrueEstimate())
	if err != nil {
		t.Fatal(err)
	}
	if p.Root == nil || p.Root.Table != -1 {
		t.Fatal("expected a join at the plan root")
	}
	cost, err := o.Execute(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Errorf("true cost %g, want > 0", cost)
	}
	// With a perfect estimator, EstCost equals TrueCost.
	if math.Abs(p.EstCost-p.TrueCost) > 1e-6*p.TrueCost {
		t.Errorf("perfect-estimate plan: est %g != true %g", p.EstCost, p.TrueCost)
	}
	// Plan covers exactly the query's tables.
	got := p.Root.Tables()
	if len(got) != 3 {
		t.Errorf("plan covers %d tables, want 3", len(got))
	}
}

func TestPlanErrors(t *testing.T) {
	o, _ := optSetup(t, "tpch", 2)
	empty := query.New(o.ds.Meta)
	if _, err := o.Plan(empty, o.TrueEstimate()); err == nil {
		t.Error("empty query should fail to plan")
	}
	disc := query.New(o.ds.Meta)
	disc.Tables[o.ds.TableIndex("lineitem")] = true
	disc.Tables[o.ds.TableIndex("region")] = true
	if _, err := o.Plan(disc, o.TrueEstimate()); err == nil {
		t.Error("disconnected query should fail to plan")
	}
}

func TestSingleTablePlan(t *testing.T) {
	o, _ := optSetup(t, "dmv", 3)
	q := query.New(o.ds.Meta)
	q.Tables[0] = true
	q.Bounds[0] = [2]float64{0, 0.5}
	p, err := o.Plan(q, o.TrueEstimate())
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Table != 0 {
		t.Errorf("single-table plan root = %+v", p.Root)
	}
	cost, err := o.Execute(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if cost != float64(o.ds.Tables[0].Rows) {
		t.Errorf("scan cost %g, want %d", cost, o.ds.Tables[0].Rows)
	}
}

func TestOptimalBeatsAdversarialEstimates(t *testing.T) {
	// The Table 5 mechanism: plans driven by bad estimates must not be
	// cheaper than plans driven by the truth, and on average are
	// strictly worse.
	o, gen := optSetup(t, "tpch", 4)
	gen.MaxJoinTables = 4
	w := gen.Random(30)

	rng := rand.New(rand.NewSource(99))
	adversarial := func(q *query.Query) float64 {
		// Random garbage estimates spanning ten orders of magnitude.
		return math.Pow(10, rng.Float64()*10)
	}

	var trueTotal, advTotal float64
	worse := 0
	planned := 0
	for _, l := range w {
		if l.Q.NumTables() < 2 {
			continue
		}
		pTrue, err := o.Plan(l.Q, o.TrueEstimate())
		if err != nil {
			continue
		}
		cTrue, err := o.Execute(l.Q, pTrue)
		if err != nil {
			continue
		}
		pAdv, err := o.Plan(l.Q, adversarial)
		if err != nil {
			continue
		}
		cAdv, err := o.Execute(l.Q, pAdv)
		if err != nil {
			continue
		}
		planned++
		trueTotal += cTrue
		advTotal += cAdv
		if cAdv > cTrue*(1+1e-9) {
			worse++
		}
		if cAdv < cTrue*(1-1e-9) {
			t.Errorf("adversarial plan beat the optimal plan: %g < %g", cAdv, cTrue)
		}
	}
	if planned < 5 {
		t.Fatalf("only %d multi-join queries planned", planned)
	}
	if advTotal <= trueTotal {
		t.Errorf("adversarial total %g not worse than optimal %g", advTotal, trueTotal)
	}
	if worse == 0 {
		t.Error("no adversarial plan was strictly worse — cost model too flat")
	}
}

func TestLatencySkipsUnplannable(t *testing.T) {
	o, gen := optSetup(t, "stats", 5)
	w := gen.Random(10)
	qs := workload.Queries(w)
	// Append an unplannable query; Latency must skip it.
	qs = append(qs, query.New(o.ds.Meta))
	lat := o.Latency(qs, o.TrueEstimate())
	if lat <= 0 {
		t.Errorf("latency %g, want > 0", lat)
	}
}

func TestOpString(t *testing.T) {
	if HashJoin.String() != "HashJoin" || IndexNestedLoop.String() != "INL" {
		t.Error("operator names wrong")
	}
}

func TestUnderestimatePrefersINL(t *testing.T) {
	// Severe underestimation of the outer side should lure the planner
	// into index nested loops; verify INL appears under an estimator
	// that reports tiny cardinalities everywhere.
	o, _ := optSetup(t, "tpch", 6)
	q := multiJoinQuery(t, o)
	tiny := func(*query.Query) float64 { return 1 }
	p, err := o.Plan(q, tiny)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.Table < 0 && n.Op == IndexNestedLoop {
			found = true
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(p.Root)
	if !found {
		t.Error("tiny estimates did not produce any INL operator")
	}
}

func TestExplain(t *testing.T) {
	o, _ := optSetup(t, "tpch", 7)
	q := multiJoinQuery(t, o)
	p, err := o.Plan(q, o.TrueEstimate())
	if err != nil {
		t.Fatal(err)
	}
	pre := p.Explain(o.ds)
	if !strings.Contains(pre, "Scan lineitem") || !strings.Contains(pre, "est rows") {
		t.Errorf("Explain missing scan rows:\n%s", pre)
	}
	if strings.Contains(pre, "true cost") {
		t.Error("true cost shown before Execute")
	}
	if _, err := o.Execute(q, p); err != nil {
		t.Fatal(err)
	}
	post := p.Explain(o.ds)
	if !strings.Contains(post, "true cost") || !strings.Contains(post, "true ") {
		t.Errorf("Explain missing true rows after Execute:\n%s", post)
	}
}
