package qopt

import (
	"fmt"
	"strings"

	"pace/internal/dataset"
)

// Explain renders the plan as an indented EXPLAIN-style tree with
// estimated (and, after Execute, true) row counts — the view a DBA would
// use to see how poisoned estimates warped the plan.
func (p *Plan) Explain(ds *dataset.Dataset) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Plan (est cost %.4g", p.EstCost)
	if p.TrueCost > 0 {
		fmt.Fprintf(&b, ", true cost %.4g", p.TrueCost)
	}
	b.WriteString(")\n")
	explainNode(&b, ds, p.Root, 1)
	return b.String()
}

func explainNode(b *strings.Builder, ds *dataset.Dataset, n *Node, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.Table >= 0 {
		fmt.Fprintf(b, "%s Scan %s (est rows %.4g", indent, ds.Tables[n.Table].Name, n.EstRows)
		if n.TrueRows > 0 {
			fmt.Fprintf(b, ", true %.4g", n.TrueRows)
		}
		b.WriteString(")\n")
		return
	}
	fmt.Fprintf(b, "%s %s (est rows %.4g", indent, n.Op, n.EstRows)
	if n.TrueRows > 0 {
		fmt.Fprintf(b, ", true %.4g", n.TrueRows)
	}
	b.WriteString(")\n")
	explainNode(b, ds, n.Left, depth+1)
	explainNode(b, ds, n.Right, depth+1)
}
