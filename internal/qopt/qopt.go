// Package qopt is the cost-based query optimizer substrate behind the
// paper's end-to-end latency experiments (Table 5). It reproduces the
// causal chain the paper measures on PostgreSQL: the optimizer picks a
// join order and physical operators using the (possibly poisoned) CE
// model's ESTIMATES, and the resulting plan is then costed with the TRUE
// intermediate cardinalities — so estimation error translates into real
// extra work, exactly as a mis-planned query burns real time.
//
// Plans are left-deep-or-bushy trees found by dynamic programming over
// connected table subsets. Two physical join operators are modeled:
//
//   - hash join: cost = |L| + |R| + |out| (build + probe + emit)
//   - index nested-loop: cost = |L|·log₂(rows(R)) + |out|, available only
//     when the inner side is a base table (it needs an index)
//
// Leaves are table scans: cost = rows(T), output = σ(T).
package qopt

import (
	"fmt"
	"math"
	"math/bits"

	"pace/internal/dataset"
	"pace/internal/engine"
	"pace/internal/query"
)

// Estimate is a cardinality estimator for connected sub-queries — the
// optimizer's view of the CE model (e.g. (*ce.BlackBox).Estimate).
type Estimate func(*query.Query) float64

// Op is a physical join operator.
type Op int

// Physical operators.
const (
	HashJoin Op = iota
	IndexNestedLoop
)

// String names the operator.
func (o Op) String() string {
	if o == IndexNestedLoop {
		return "INL"
	}
	return "HashJoin"
}

// Node is one plan-tree node. Leaves have Table >= 0 and no children;
// inner nodes have both children and a join operator.
type Node struct {
	Table       int // leaf: table index; -1 for joins
	Left, Right *Node
	Op          Op

	// EstRows is the optimizer's estimated output cardinality;
	// TrueRows is filled in during execution.
	EstRows  float64
	TrueRows float64
}

// Tables returns the set of table indexes under the node.
func (n *Node) Tables() []int {
	if n.Table >= 0 {
		return []int{n.Table}
	}
	return append(n.Left.Tables(), n.Right.Tables()...)
}

// Plan is an optimized query plan.
type Plan struct {
	Root *Node
	// EstCost is the optimizer's total cost under estimated
	// cardinalities (the quantity it minimized).
	EstCost float64
	// TrueCost is the cost under true cardinalities, filled by Execute.
	TrueCost float64
}

// Optimizer plans SPJ queries over one dataset.
type Optimizer struct {
	ds  *dataset.Dataset
	eng *engine.Engine
}

// New builds an optimizer over ds.
func New(ds *dataset.Dataset, eng *engine.Engine) *Optimizer {
	return &Optimizer{ds: ds, eng: eng}
}

// subQuery builds the query restricted to the table subset mask.
func (o *Optimizer) subQuery(q *query.Query, mask uint64, tables []int) *query.Query {
	sq := query.New(o.ds.Meta)
	for i, t := range tables {
		if mask&(1<<uint(i)) != 0 {
			sq.Tables[t] = true
			lo, hi := o.ds.Meta.Attrs(t)
			for a := lo; a < hi; a++ {
				sq.Bounds[a] = q.Bounds[a]
			}
		}
	}
	return sq
}

// connected reports whether the masked subset of tables forms a connected
// subgraph of the join tree.
func (o *Optimizer) connected(mask uint64, tables []int) bool {
	var members []int
	for i, t := range tables {
		if mask&(1<<uint(i)) != 0 {
			members = append(members, t)
		}
	}
	if len(members) == 0 {
		return false
	}
	seen := map[int]bool{members[0]: true}
	frontier := []int{members[0]}
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, t := range members {
			if !seen[t] && o.ds.Joinable(cur, t) {
				seen[t] = true
				frontier = append(frontier, t)
			}
		}
	}
	return len(seen) == len(members)
}

// joinableMasks reports whether some table in a is adjacent to some table
// in b.
func (o *Optimizer) joinableMasks(a, b uint64, tables []int) bool {
	for i, ti := range tables {
		if a&(1<<uint(i)) == 0 {
			continue
		}
		for j, tj := range tables {
			if b&(1<<uint(j)) != 0 && o.ds.Joinable(ti, tj) {
				return true
			}
		}
	}
	return false
}

type dpEntry struct {
	node *Node
	cost float64
	rows float64 // estimated output rows
}

// Plan finds the minimum-estimated-cost plan for q using est for every
// intermediate cardinality. It returns an error for queries whose tables
// do not form a connected join.
func (o *Optimizer) Plan(q *query.Query, est Estimate) (*Plan, error) {
	var tables []int
	for t, in := range q.Tables {
		if in {
			tables = append(tables, t)
		}
	}
	if len(tables) == 0 || !q.Connected(o.ds.Joinable) {
		return nil, fmt.Errorf("qopt: query tables are not a connected join")
	}
	if len(tables) > 16 {
		return nil, fmt.Errorf("qopt: %d tables exceed the DP limit of 16", len(tables))
	}

	n := len(tables)
	full := uint64(1)<<uint(n) - 1
	dp := make(map[uint64]dpEntry, 1<<uint(n))

	// Leaves: scan with selection pushdown.
	for i, t := range tables {
		mask := uint64(1) << uint(i)
		rows := est(o.subQuery(q, mask, tables))
		if rows < 1 {
			rows = 1
		}
		dp[mask] = dpEntry{
			node: &Node{Table: t, EstRows: rows},
			cost: float64(o.ds.Tables[t].Rows),
			rows: rows,
		}
	}

	// DP over connected subsets in increasing popcount order.
	for size := 2; size <= n; size++ {
		for mask := uint64(1); mask <= full; mask++ {
			if bits.OnesCount64(mask) != size || !o.connected(mask, tables) {
				continue
			}
			outRows := est(o.subQuery(q, mask, tables))
			if outRows < 1 {
				outRows = 1
			}
			best := dpEntry{cost: math.Inf(1)}
			// Enumerate proper sub-splits (left gets the lowest set
			// bit to break symmetry).
			lowest := mask & (^mask + 1)
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				if sub&lowest == 0 {
					continue
				}
				other := mask &^ sub
				l, okL := dp[sub]
				r, okR := dp[other]
				if !okL || !okR || !o.joinableMasks(sub, other, tables) {
					continue
				}
				for _, cand := range o.joinCandidates(l, r, other, tables, outRows) {
					if cand.cost < best.cost {
						best = cand
					}
				}
			}
			if !math.IsInf(best.cost, 1) {
				dp[mask] = best
			}
		}
	}

	final, ok := dp[full]
	if !ok {
		return nil, fmt.Errorf("qopt: no plan found (disconnected sub-splits)")
	}
	return &Plan{Root: final.node, EstCost: final.cost}, nil
}

// joinCandidates costs the physical alternatives for joining l and r.
func (o *Optimizer) joinCandidates(l, r dpEntry, rightMask uint64, tables []int, outRows float64) []dpEntry {
	var out []dpEntry
	// Hash join, both orientations cost the same under this model.
	hj := &Node{Table: -1, Left: l.node, Right: r.node, Op: HashJoin, EstRows: outRows}
	out = append(out, dpEntry{
		node: hj,
		cost: l.cost + r.cost + l.rows + r.rows + outRows,
		rows: outRows,
	})
	// Index nested loop: inner side must be a single base table.
	if bits.OnesCount64(rightMask) == 1 {
		t := tables[bits.TrailingZeros64(rightMask)]
		inl := &Node{Table: -1, Left: l.node, Right: r.node, Op: IndexNestedLoop, EstRows: outRows}
		probe := math.Log2(float64(o.ds.Tables[t].Rows) + 2)
		out = append(out, dpEntry{
			node: inl,
			// The inner leaf's scan cost is replaced by index probes.
			cost: l.cost + l.rows*probe + outRows,
			rows: outRows,
		})
	}
	return out
}

// Execute costs the chosen plan with TRUE cardinalities from the exact
// engine — the simulated end-to-end latency, in abstract row-operation
// units. The plan's TrueCost and every node's TrueRows are filled in.
func (o *Optimizer) Execute(q *query.Query, p *Plan) (float64, error) {
	cost, _, err := o.executeNode(q, p.Root)
	if err != nil {
		return 0, err
	}
	p.TrueCost = cost
	return cost, nil
}

func (o *Optimizer) executeNode(q *query.Query, n *Node) (cost, rows float64, err error) {
	sq := query.New(o.ds.Meta)
	for _, t := range n.Tables() {
		sq.Tables[t] = true
		lo, hi := o.ds.Meta.Attrs(t)
		for a := lo; a < hi; a++ {
			sq.Bounds[a] = q.Bounds[a]
		}
	}
	trueRows, err := o.eng.Cardinality(sq)
	if err != nil {
		return 0, 0, err
	}
	n.TrueRows = trueRows

	if n.Table >= 0 {
		return float64(o.ds.Tables[n.Table].Rows), trueRows, nil
	}
	lc, lr, err := o.executeNode(q, n.Left)
	if err != nil {
		return 0, 0, err
	}
	rc, rr, err := o.executeNode(q, n.Right)
	if err != nil {
		return 0, 0, err
	}
	switch n.Op {
	case IndexNestedLoop:
		t := n.Right.Tables()[0]
		probe := math.Log2(float64(o.ds.Tables[t].Rows) + 2)
		return lc + lr*probe + trueRows, trueRows, nil
	default:
		return lc + rc + lr + rr + trueRows, trueRows, nil
	}
}

// Latency plans and executes a workload with the given estimator and
// returns the summed true cost — the Table 5 E2E metric. Queries that
// cannot be planned are skipped.
func (o *Optimizer) Latency(qs []*query.Query, est Estimate) float64 {
	var total float64
	for _, q := range qs {
		p, err := o.Plan(q, est)
		if err != nil {
			continue
		}
		cost, err := o.Execute(q, p)
		if err != nil {
			continue
		}
		total += cost
	}
	return total
}

// TrueEstimate returns the oracle estimator (plans with perfect
// cardinalities — the optimal-plan reference).
func (o *Optimizer) TrueEstimate() Estimate {
	return func(q *query.Query) float64 {
		card, err := o.eng.Cardinality(q)
		if err != nil {
			return 1
		}
		return card
	}
}
