package wire

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"pace/internal/query"
)

func testMeta(nTables, attrsPerTable int) *query.Meta {
	m := &query.Meta{AttrOffset: []int{0}}
	for t := 0; t < nTables; t++ {
		m.TableNames = append(m.TableNames, string(rune('a'+t)))
		for a := 0; a < attrsPerTable; a++ {
			m.AttrNames = append(m.AttrNames, "attr")
		}
		m.AttrOffset = append(m.AttrOffset, (t+1)*attrsPerTable)
	}
	return m
}

// nastyFloats are the bound values ordinary float JSON mangles or
// rejects outright: infinities, NaN payloads, subnormals, negative
// zero, and values whose shortest decimal form is long.
var nastyFloats = []float64{
	0, 1, 0.5,
	math.Copysign(0, -1),
	math.Inf(1), math.Inf(-1),
	math.NaN(),
	math.Float64frombits(0x7ff8000000000001), // NaN with payload
	math.SmallestNonzeroFloat64,
	-math.SmallestNonzeroFloat64,
	math.MaxFloat64, -math.MaxFloat64,
	0.1, 1.0 / 3.0,
	math.Nextafter(0.5, 1),
	math.Nextafter(1, 0),
}

// randomQuery draws a query whose joins and bounds exercise the full
// encodable surface, including the nasty corner values.
func randomQuery(m *query.Meta, rng *rand.Rand) *query.Query {
	q := query.New(m)
	for t := range q.Tables {
		q.Tables[t] = rng.Intn(2) == 0
	}
	for a := range q.Bounds {
		switch rng.Intn(3) {
		case 0: // leave open [0,1] — the "empty predicate" shape
		case 1:
			q.Bounds[a] = [2]float64{rng.Float64(), rng.Float64()}
		default:
			q.Bounds[a] = [2]float64{
				nastyFloats[rng.Intn(len(nastyFloats))],
				nastyFloats[rng.Intn(len(nastyFloats))],
			}
		}
	}
	return q
}

// TestQueryRoundTripPreservesKey is the codec's core contract: encode →
// JSON marshal → unmarshal → decode reproduces query.Key byte-for-byte,
// for thousands of random queries over assorted schema shapes.
func TestQueryRoundTripPreservesKey(t *testing.T) {
	shapes := [][2]int{{1, 1}, {2, 3}, {5, 2}, {9, 4}, {16, 1}}
	rng := rand.New(rand.NewSource(42))
	for _, sh := range shapes {
		m := testMeta(sh[0], sh[1])
		for i := 0; i < 1000; i++ {
			q := randomQuery(m, rng)
			blob, err := json.Marshal(EncodeQuery(q))
			if err != nil {
				t.Fatalf("shape %v query %d: marshal: %v", sh, i, err)
			}
			var wq Query
			if err := json.Unmarshal(blob, &wq); err != nil {
				t.Fatalf("shape %v query %d: unmarshal: %v", sh, i, err)
			}
			got, err := wq.Decode(m)
			if err != nil {
				t.Fatalf("shape %v query %d: decode: %v", sh, i, err)
			}
			if got.Key() != q.Key() {
				t.Fatalf("shape %v query %d: Key changed across the wire\n json: %s", sh, i, blob)
			}
		}
	}
}

// TestQueryRoundTripExtremes pins the named corner cases individually,
// so a regression reports which one broke.
func TestQueryRoundTripExtremes(t *testing.T) {
	m := testMeta(2, 1)
	cases := map[string]func(q *query.Query){
		"empty predicates, no joins": func(q *query.Query) {},
		"all joins":                  func(q *query.Query) { q.Tables[0], q.Tables[1] = true, true },
		"+inf upper bound":           func(q *query.Query) { q.Bounds[0] = [2]float64{0, math.Inf(1)} },
		"-inf lower bound":           func(q *query.Query) { q.Bounds[1] = [2]float64{math.Inf(-1), 1} },
		"negative zero":              func(q *query.Query) { q.Bounds[0] = [2]float64{math.Copysign(0, -1), 1} },
		"nan bound":                  func(q *query.Query) { q.Bounds[0] = [2]float64{math.NaN(), 1} },
		"subnormal":                  func(q *query.Query) { q.Bounds[1] = [2]float64{math.SmallestNonzeroFloat64, 0.5} },
		"inverted bounds verbatim":   func(q *query.Query) { q.Bounds[0] = [2]float64{0.9, 0.1} },
	}
	for name, mutate := range cases {
		q := query.New(m)
		mutate(q)
		blob, err := json.Marshal(EncodeQuery(q))
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var wq Query
		if err := json.Unmarshal(blob, &wq); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		got, err := wq.Decode(m)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if got.Key() != q.Key() {
			t.Errorf("%s: Key changed across the wire (json %s)", name, blob)
		}
	}
}

// TestB64ExactRoundTrip covers the scalar carrier directly, including a
// full sweep of random bit patterns (every uint64 is a legal B64).
func TestB64ExactRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		bits := rng.Uint64()
		b := B64(bits)
		blob, err := json.Marshal(b)
		if err != nil {
			t.Fatalf("marshal %#x: %v", bits, err)
		}
		var back B64
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", blob, err)
		}
		if back != b {
			t.Fatalf("bits %#x → %s → %#x", bits, blob, uint64(back))
		}
		if math.Float64bits(back.Float()) != bits {
			t.Fatalf("Float() lost bits: %#x → %#x", bits, math.Float64bits(back.Float()))
		}
	}
	for _, f := range nastyFloats {
		if got := FromFloat(f).Float(); math.Float64bits(got) != math.Float64bits(f) {
			t.Errorf("FromFloat/Float mangled %v (%#x → %#x)",
				f, math.Float64bits(f), math.Float64bits(got))
		}
	}
}

// TestFromFloatsToFloatsRoundTrip covers the slice helpers used for
// estimates and cardinality labels.
func TestFromFloatsToFloatsRoundTrip(t *testing.T) {
	got := ToFloats(FromFloats(nastyFloats))
	if len(got) != len(nastyFloats) {
		t.Fatalf("length %d, want %d", len(got), len(nastyFloats))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(nastyFloats[i]) {
			t.Errorf("index %d: %#x → %#x",
				i, math.Float64bits(nastyFloats[i]), math.Float64bits(got[i]))
		}
	}
}

// TestDecodeRejectsMalformedQueries pins the server-side validation:
// shape mismatches are errors, never guesses.
func TestDecodeRejectsMalformedQueries(t *testing.T) {
	m := testMeta(3, 2) // 3 tables, 6 attrs
	open := func(n int) [][2]B64 {
		out := make([][2]B64, n)
		for i := range out {
			out[i] = [2]B64{FromFloat(0), FromFloat(1)}
		}
		return out
	}
	cases := map[string]Query{
		"too few bounds":           {Tables: []int{0}, Bounds: open(5)},
		"too many bounds":          {Tables: []int{0}, Bounds: open(7)},
		"no bounds":                {Tables: []int{0}},
		"table index negative":     {Tables: []int{-1}, Bounds: open(6)},
		"table index out of range": {Tables: []int{3}, Bounds: open(6)},
		"tables descending":        {Tables: []int{2, 0}, Bounds: open(6)},
		"duplicate table":          {Tables: []int{1, 1}, Bounds: open(6)},
	}
	for name, wq := range cases {
		if _, err := wq.Decode(m); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// The batch decoder reports the offending index.
	bad := []Query{{Tables: nil, Bounds: open(6)}, {Tables: []int{9}, Bounds: open(6)}}
	if _, err := DecodeQueries(m, bad); err == nil || !strings.Contains(err.Error(), "query 1") {
		t.Errorf("batch decode error %v, want mention of query 1", err)
	}
}

// TestDecodeEncodeIdentity: decoding a wire query and re-encoding it
// yields the identical wire form (canonical representation).
func TestDecodeEncodeIdentity(t *testing.T) {
	m := testMeta(4, 2)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		q := randomQuery(m, rng)
		wq := EncodeQuery(q)
		dec, err := wq.Decode(m)
		if err != nil {
			t.Fatalf("query %d: decode: %v", i, err)
		}
		re := EncodeQuery(dec)
		a, _ := json.Marshal(wq)
		b, _ := json.Marshal(re)
		if string(a) != string(b) {
			t.Fatalf("query %d: wire form not canonical:\n %s\n %s", i, a, b)
		}
	}
}
