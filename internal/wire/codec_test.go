package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"pace/internal/query"
)

// codecs under test; every property must hold for both.
var testCodecs = []Codec{JSON, Binary}

func randomWireQueries(m *query.Meta, n int, rng *rand.Rand) []Query {
	out := make([]Query, n)
	for i := range out {
		out[i] = EncodeQuery(randomQuery(m, rng))
	}
	return out
}

func randomB64s(n int, rng *rand.Rand) []B64 {
	out := make([]B64, n)
	for i := range out {
		if rng.Intn(3) == 0 {
			out[i] = FromFloat(nastyFloats[rng.Intn(len(nastyFloats))])
		} else {
			out[i] = B64(rng.Uint64())
		}
	}
	return out
}

// TestCrossCodecEquivalence is the protocol-v2 contract: the same
// message round-tripped through the JSON codec and through the binary
// codec decodes to the same semantic value — query.Key, estimate and
// card bit patterns all identical — across schema shapes, batch sizes
// and adversarial float values.
func TestCrossCodecEquivalence(t *testing.T) {
	shapes := [][2]int{{1, 1}, {2, 3}, {5, 2}, {9, 4}, {16, 1}}
	sizes := []int{0, 1, 7, 64}
	rng := rand.New(rand.NewSource(11))
	for _, sh := range shapes {
		m := testMeta(sh[0], sh[1])
		for _, n := range sizes {
			qs := randomWireQueries(m, n, rng)
			cards := randomB64s(n, rng)

			ereq := &EstimateRequest{V: Version, Queries: qs}
			xreq := &ExecuteRequest{V: Version, Queries: qs, Cards: cards}
			eresp := &EstimateResponse{V: Version, Estimates: randomB64s(n, rng)}
			xresp := &ExecuteResponse{V: Version, Executed: n}

			var keys [][]string // one key list per codec
			for _, c := range testCodecs {
				blob, err := c.EncodeEstimateRequest(ereq)
				if err != nil {
					t.Fatalf("%s shape %v n=%d: encode estimate: %v", c.Name(), sh, n, err)
				}
				back, err := c.DecodeEstimateRequest(blob)
				if err != nil {
					t.Fatalf("%s shape %v n=%d: decode estimate: %v", c.Name(), sh, n, err)
				}
				if back.V != Version {
					t.Fatalf("%s: decoded V=%d, want normalized %d", c.Name(), back.V, Version)
				}
				ks := make([]string, len(back.Queries))
				for i := range back.Queries {
					dq, err := back.Queries[i].Decode(m)
					if err != nil {
						t.Fatalf("%s shape %v query %d: semantic decode: %v", c.Name(), sh, i, err)
					}
					ks[i] = dq.Key()
				}
				keys = append(keys, ks)

				xblob, err := c.EncodeExecuteRequest(xreq)
				if err != nil {
					t.Fatalf("%s: encode execute: %v", c.Name(), err)
				}
				xback, err := c.DecodeExecuteRequest(xblob)
				if err != nil {
					t.Fatalf("%s: decode execute: %v", c.Name(), err)
				}
				if len(xback.Cards) != n {
					t.Fatalf("%s: %d cards back, want %d", c.Name(), len(xback.Cards), n)
				}
				for i := range xback.Cards {
					if xback.Cards[i] != cards[i] {
						t.Fatalf("%s card %d: %#x → %#x", c.Name(), i, uint64(cards[i]), uint64(xback.Cards[i]))
					}
				}

				rblob, err := c.EncodeEstimateResponse(eresp)
				if err != nil {
					t.Fatalf("%s: encode estimates: %v", c.Name(), err)
				}
				rback, err := c.DecodeEstimateResponse(rblob)
				if err != nil {
					t.Fatalf("%s: decode estimates: %v", c.Name(), err)
				}
				for i := range rback.Estimates {
					if rback.Estimates[i] != eresp.Estimates[i] {
						t.Fatalf("%s estimate %d changed bits", c.Name(), i)
					}
				}

				xrblob, err := c.EncodeExecuteResponse(xresp)
				if err != nil {
					t.Fatalf("%s: encode executed: %v", c.Name(), err)
				}
				xrback, err := c.DecodeExecuteResponse(xrblob)
				if err != nil {
					t.Fatalf("%s: decode executed: %v", c.Name(), err)
				}
				if xrback.Executed != n {
					t.Fatalf("%s: executed %d, want %d", c.Name(), xrback.Executed, n)
				}
			}
			for i := range keys[0] {
				if keys[0][i] != keys[1][i] {
					t.Fatalf("shape %v query %d: json and binary decode to different keys", sh, i)
				}
			}
		}
	}
}

// validEstimateFrame builds one well-formed binary estimate request for
// the rejection and fuzz corpora.
func validEstimateFrame(t testing.TB) []byte {
	t.Helper()
	m := testMeta(2, 2)
	rng := rand.New(rand.NewSource(3))
	blob, err := Binary.EncodeEstimateRequest(&EstimateRequest{
		V: Version, Queries: randomWireQueries(m, 3, rng),
	})
	if err != nil {
		t.Fatalf("building seed frame: %v", err)
	}
	return blob
}

// TestBinaryFrameRejection drives every malformation class through the
// parser: each must come back as ErrBadFrame (or ErrVersionMismatch for
// the version byte), as machine-readable codes — never a panic, never a
// silent partial decode.
func TestBinaryFrameRejection(t *testing.T) {
	valid := validEstimateFrame(t)
	corrupt := func(mutate func(b []byte) []byte) []byte {
		return mutate(append([]byte(nil), valid...))
	}
	cases := map[string]struct {
		raw  []byte
		want error
	}{
		"empty":        {nil, ErrBadFrame},
		"short header": {valid[:frameHeaderLen-1], ErrBadFrame},
		"bad magic": {corrupt(func(b []byte) []byte { b[0] = 'X'; return b }),
			ErrBadFrame},
		"future version": {corrupt(func(b []byte) []byte { b[2] = BinaryVersion + 1; return b }),
			ErrVersionMismatch},
		"wrong message type": {corrupt(func(b []byte) []byte { b[3] = msgExecuteRequest; return b }),
			ErrBadFrame},
		"truncated payload": {valid[:len(valid)-1], ErrBadFrame},
		"trailing garbage":  {append(append([]byte(nil), valid...), 0xEE), ErrBadFrame},
		"length larger than body": {corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], uint32(len(b))) // claims more than carried
			return b
		}), ErrBadFrame},
		"length smaller than body": {corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], 0)
			return b
		}), ErrBadFrame},
		"huge query count": {mustFrame(t, msgEstimateRequest,
			binary.AppendUvarint(nil, uint64(MaxBatch)+1)), ErrBadFrame},
		"query count beyond payload": {mustFrame(t, msgEstimateRequest,
			binary.AppendUvarint(nil, 100)), ErrBadFrame},
		"unterminated uvarint": {mustFrame(t, msgEstimateRequest,
			bytes.Repeat([]byte{0x80}, 12)), ErrBadFrame},
		"huge table count": {mustFrame(t, msgEstimateRequest,
			appendUvarints(nil, 1, maxTablesPerQuery+1)), ErrBadFrame},
		"huge bound count": {mustFrame(t, msgEstimateRequest,
			appendUvarints(nil, 1, 0, maxBoundsPerQuery+1)), ErrBadFrame},
		"bound lane truncated": {mustFrame(t, msgEstimateRequest,
			append(appendUvarints(nil, 1, 0, 1), 1, 2, 3)), ErrBadFrame},
	}
	for name, tc := range cases {
		if _, err := Binary.DecodeEstimateRequest(tc.raw); !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v, want %v", name, err, tc.want)
		}
	}

	// The execute decoder shares the parser; its card lane has its own
	// truncation class (queries fit, cards missing).
	qs := randomWireQueries(testMeta(1, 1), 2, rand.New(rand.NewSource(5)))
	xblob, err := Binary.EncodeExecuteRequest(&ExecuteRequest{V: Version, Queries: qs, Cards: randomB64s(2, rand.New(rand.NewSource(6)))})
	if err != nil {
		t.Fatalf("seed execute frame: %v", err)
	}
	short := append([]byte(nil), xblob[:len(xblob)-8]...) // drop the last card
	binary.LittleEndian.PutUint32(short[4:8], uint32(len(short)-frameHeaderLen))
	if _, err := Binary.DecodeExecuteRequest(short); !errors.Is(err, ErrBadFrame) {
		t.Errorf("card lane truncation: error %v, want ErrBadFrame", err)
	}
}

func mustFrame(t testing.TB, msgType byte, payload []byte) []byte {
	t.Helper()
	blob, err := frame(msgType, payload)
	if err != nil {
		t.Fatalf("frame: %v", err)
	}
	return blob
}

func appendUvarints(buf []byte, vs ...uint64) []byte {
	for _, v := range vs {
		buf = binary.AppendUvarint(buf, v)
	}
	return buf
}

// TestJSONCodecRejectsWrongVersion pins the JSON side of the version
// gate alongside the binary frame-version byte.
func TestJSONCodecRejectsWrongVersion(t *testing.T) {
	blob := []byte(`{"v":99,"queries":[]}`)
	if _, err := JSON.DecodeEstimateRequest(blob); !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("v99 decode error %v, want ErrVersionMismatch", err)
	}
	if _, err := JSON.DecodeEstimateRequest([]byte(`{"v":1,`)); err == nil {
		t.Error("truncated JSON decoded without error")
	}
}

// TestNegotiationHelpers pins the header-level negotiation surface the
// server builds on.
func TestNegotiationHelpers(t *testing.T) {
	if c, ok := CodecForContentType(""); !ok || c.Name() != "json" {
		t.Errorf("absent Content-Type → (%v,%v), want json (v1 behaviour)", c, ok)
	}
	if c, ok := CodecForContentType("application/json; charset=utf-8"); !ok || c.Name() != "json" {
		t.Errorf("json+charset → (%v,%v)", c, ok)
	}
	if c, ok := CodecForContentType("Application/X-Pace-Binary"); !ok || c.Name() != "binary" {
		t.Errorf("case-insensitive binary → (%v,%v)", c, ok)
	}
	if _, ok := CodecForContentType("text/plain"); ok {
		t.Error("text/plain resolved to a codec; want 415 path")
	}
	if !AcceptsBinary("application/json, application/x-pace-binary;q=0.9") {
		t.Error("Accept listing binary with q-value not honored")
	}
	if AcceptsBinary("application/json, */*") {
		t.Error("wildcard Accept must not opt into binary")
	}
	if _, ok := CodecByName("BINARY"); !ok {
		t.Error("CodecByName is case-sensitive; flags should not be")
	}
	if _, ok := CodecByName("protobuf"); ok {
		t.Error("unknown codec name resolved")
	}
}

// FuzzBinaryFrame hammers all four binary decoders with arbitrary
// bytes: any outcome but (nil error with a canonical re-encode) or a
// typed ErrBadFrame / ErrVersionMismatch is a bug, and panics fail the
// fuzz run outright.
func FuzzBinaryFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("PW"))
	f.Add(validEstimateFrame(f))
	m := testMeta(3, 2)
	rng := rand.New(rand.NewSource(8))
	xblob, err := Binary.EncodeExecuteRequest(&ExecuteRequest{
		V: Version, Queries: randomWireQueries(m, 2, rng), Cards: randomB64s(2, rng),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(xblob)
	rblob, _ := Binary.EncodeEstimateResponse(&EstimateResponse{V: Version, Estimates: randomB64s(5, rng)})
	f.Add(rblob)
	xrblob, _ := Binary.EncodeExecuteResponse(&ExecuteResponse{V: Version, Executed: 7})
	f.Add(xrblob)
	f.Add(mustFrame(f, msgEstimateRequest, bytes.Repeat([]byte{0x80}, 9)))

	f.Fuzz(func(t *testing.T, raw []byte) {
		check := func(err error, reencoded []byte, reerr error) {
			if err != nil {
				if !errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrVersionMismatch) {
					t.Fatalf("untyped decode error: %v", err)
				}
				return
			}
			// A frame the decoder accepted must re-encode cleanly and
			// byte-identically: accepted input is canonical.
			if reerr != nil {
				t.Fatalf("accepted frame re-encode failed: %v", reerr)
			}
			if !bytes.Equal(raw, reencoded) {
				t.Fatalf("accepted frame not canonical:\n in  %x\n out %x", raw, reencoded)
			}
		}
		if req, err := Binary.DecodeEstimateRequest(raw); err == nil {
			re, reerr := Binary.EncodeEstimateRequest(req)
			check(nil, re, reerr)
		} else {
			check(err, nil, nil)
		}
		if req, err := Binary.DecodeExecuteRequest(raw); err == nil {
			re, reerr := Binary.EncodeExecuteRequest(req)
			check(nil, re, reerr)
		} else {
			check(err, nil, nil)
		}
		if resp, err := Binary.DecodeEstimateResponse(raw); err == nil {
			re, reerr := Binary.EncodeEstimateResponse(resp)
			check(nil, re, reerr)
		} else {
			check(err, nil, nil)
		}
		if resp, err := Binary.DecodeExecuteResponse(raw); err == nil {
			re, reerr := Binary.EncodeExecuteResponse(resp)
			check(nil, re, reerr)
		} else {
			check(err, nil, nil)
		}
	})
}

// workloadLikeQueries draws queries with the predicate shape the
// workload generator produces — a handful of constrained attributes,
// the rest left at the open [0,1] default.
func workloadLikeQueries(m *query.Meta, n, constrained int, rng *rand.Rand) []Query {
	nAttrs := m.AttrOffset[len(m.AttrOffset)-1]
	qs := make([]Query, n)
	for i := range qs {
		q := query.New(m)
		for t := range q.Tables {
			q.Tables[t] = rng.Intn(2) == 0
		}
		for k := 0; k < constrained; k++ {
			a := rng.Intn(nAttrs)
			lo, hi := rng.Float64(), rng.Float64()
			if lo > hi {
				lo, hi = hi, lo
			}
			q.Bounds[a] = [2]float64{lo, hi}
		}
		qs[i] = EncodeQuery(q)
	}
	return qs
}

// TestBinarySmallerThanJSON pins the bandwidth claim the binary codec
// exists for: a workload-shaped estimate batch (few constrained
// predicates, the rest open) must shrink at least 3× next to its JSON
// form — BENCH_remote.json's estimate-path row.
func TestBinarySmallerThanJSON(t *testing.T) {
	m := testMeta(6, 3)
	rng := rand.New(rand.NewSource(21))
	req := &EstimateRequest{V: Version, Queries: workloadLikeQueries(m, 64, 4, rng)}
	jb, err := JSON.EncodeEstimateRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := Binary.EncodeEstimateRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(jb)) / float64(len(bb)); ratio < 3 {
		t.Errorf("binary estimate batch only %.2f× smaller than JSON (%d vs %d bytes); the codec's reason to exist is ≥3×",
			ratio, len(jb), len(bb))
	}
}

func benchQueries(n int) ([]Query, []B64) {
	m := testMeta(6, 3)
	rng := rand.New(rand.NewSource(17))
	return workloadLikeQueries(m, n, 4, rng), randomB64s(n, rng)
}

func benchmarkEncode(b *testing.B, c Codec) {
	qs, _ := benchQueries(64)
	req := &EstimateRequest{V: Version, Queries: qs}
	blob, err := c.EncodeEstimateRequest(req)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncodeEstimateRequest(req); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(blob)), "wire-bytes")
}

func benchmarkDecode(b *testing.B, c Codec) {
	qs, _ := benchQueries(64)
	blob, err := c.EncodeEstimateRequest(&EstimateRequest{V: Version, Queries: qs})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeEstimateRequest(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeEstimateJSON(b *testing.B)   { benchmarkEncode(b, JSON) }
func BenchmarkEncodeEstimateBinary(b *testing.B) { benchmarkEncode(b, Binary) }
func BenchmarkDecodeEstimateJSON(b *testing.B)   { benchmarkDecode(b, JSON) }
func BenchmarkDecodeEstimateBinary(b *testing.B) { benchmarkDecode(b, Binary) }
