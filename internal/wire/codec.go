// Wire protocol v2: the codec split. The estimate/execute data path is
// spoken through a Codec — either the canonical JSON codec (protocol v1,
// unchanged on the wire, the fallback every old client keeps using) or
// the length-prefixed binary codec introduced here. Both are lossless:
// every float64 travels as its IEEE-754 bit pattern, so query.Key
// survives the hop byte-identically whichever codec carried it.
//
// Binary frame layout (all integers little-endian; uvarints are
// unsigned LEB128 as encoding/binary.Uvarint):
//
//	offset  size  field
//	0       2     magic "PW" (0x50 0x57)
//	2       1     frame version (BinaryVersion = 2)
//	3       1     message type (1 EstimateRequest, 2 EstimateResponse,
//	              3 ExecuteRequest, 4 ExecuteResponse)
//	4       4     payload length N (u32 LE; must equal the remaining bytes)
//	8       N     payload
//
// Payloads:
//
//	Query            = uvarint nTables, nTables × uvarint tableIndex,
//	                   uvarint nBounds, ⌈nBounds/8⌉ bitmap bytes (bit i
//	                   set = bound i constrained), then one (u64 lo,
//	                   u64 hi) pair per SET bit
//	EstimateRequest  = uvarint nQueries, nQueries × Query
//	EstimateResponse = uvarint nEstimates, nEstimates × u64
//	ExecuteRequest   = uvarint nQueries, nQueries × Query, nQueries × u64
//	ExecuteResponse  = uvarint executed
//
// Bounds, estimates and cards are fixed 8-byte u64 lanes (the B64 bit
// patterns); batch headers are uvarint-framed. A constrained bound
// costs 16 bytes instead of the ~40 bytes its two base-10 u64 digit
// strings cost in JSON, and an open bound — the [0,1] untouched
// predicate, the most common bound in real workloads — costs one
// bitmap bit instead of ~22 JSON bytes. That is where the
// estimate-path bandwidth goes. The encoding is canonical: explicit
// [0,1] pairs in the constrained lane and set bitmap bits past
// nBounds are rejected, so any accepted frame re-encodes
// byte-identically (the fuzz suite holds the parser to this).
//
// Codec negotiation happens per request on top of the version gate:
// the request body's codec is declared by Content-Type, the desired
// response codec by Accept (see CodecForContentType / AcceptsBinary).
// Error responses are always JSON — machine-readable codes stay
// uniformly parseable no matter what the data plane speaks. Malformed
// binary frames are rejected with ErrBadFrame (wire code "bad_frame"),
// never a panic; the frame parser is fuzzed against truncated,
// oversized and garbage frames.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// Content types negotiated on the data path. Anything else answers 415
// unsupported_media.
const (
	JSONContentType   = "application/json"
	BinaryContentType = "application/x-pace-binary"
)

// BinaryVersion is the frame-level protocol version carried in byte 2 of
// every binary frame — the binary face of wire protocol v2. JSON bodies
// keep carrying Version in their "v" field, so old JSON clients work
// unmodified.
const BinaryVersion = 2

// ErrBadFrame marks a binary frame the parser rejected: bad magic, a
// truncated or oversized payload, trailing garbage, or counts that
// cannot fit the remaining bytes. Servers map it to the "bad_frame"
// code.
var ErrBadFrame = errors.New("wire: bad binary frame")

// ErrVersionMismatch marks a request whose protocol version (JSON "v"
// field or binary frame version byte) is not the one this build speaks.
var ErrVersionMismatch = errors.New("wire: protocol version mismatch")

// Frame message types.
const (
	msgEstimateRequest byte = 1 + iota
	msgEstimateResponse
	msgExecuteRequest
	msgExecuteResponse
)

// frameHeaderLen is magic(2) + version(1) + type(1) + length(4).
const frameHeaderLen = 8

// Per-query decode caps, keeping a hostile frame from forcing huge
// allocations before the length guards run.
const (
	maxTablesPerQuery = 1 << 16
	maxBoundsPerQuery = 1 << 20
)

// Codec encodes and decodes the four data-path message types. Both
// implementations validate the protocol version during decode
// (ErrVersionMismatch) and return requests with V normalized to
// Version, so handlers never re-check.
type Codec interface {
	// Name is the codec's flag-friendly name: "json" or "binary".
	Name() string
	// ContentType is the MIME type the codec travels under.
	ContentType() string

	EncodeEstimateRequest(*EstimateRequest) ([]byte, error)
	DecodeEstimateRequest([]byte) (*EstimateRequest, error)
	EncodeEstimateResponse(*EstimateResponse) ([]byte, error)
	DecodeEstimateResponse([]byte) (*EstimateResponse, error)
	EncodeExecuteRequest(*ExecuteRequest) ([]byte, error)
	DecodeExecuteRequest([]byte) (*ExecuteRequest, error)
	EncodeExecuteResponse(*ExecuteResponse) ([]byte, error)
	DecodeExecuteResponse([]byte) (*ExecuteResponse, error)
}

// JSON is the canonical v1 codec — unchanged bytes on the wire, kept as
// the negotiation fallback.
var JSON Codec = jsonCodec{}

// Binary is the length-prefixed v2 codec.
var Binary Codec = binaryCodec{}

// CodecByName resolves a -codec flag value.
func CodecByName(name string) (Codec, bool) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "json":
		return JSON, name != ""
	case "binary":
		return Binary, true
	}
	return nil, false
}

// CodecForContentType resolves a request body's codec from its
// Content-Type header. An absent Content-Type means JSON (the v1
// behaviour); parameters (charset etc.) are ignored.
func CodecForContentType(ct string) (Codec, bool) {
	switch mediaType(ct) {
	case "", JSONContentType:
		return JSON, true
	case BinaryContentType:
		return Binary, true
	}
	return nil, false
}

// AcceptsBinary reports whether an Accept header lists the binary
// content type. q-values are ignored: listing the type at all is the
// opt-in, and a server that cannot honor it falls back to JSON.
func AcceptsBinary(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		if mediaType(part) == BinaryContentType {
			return true
		}
	}
	return false
}

func mediaType(h string) string {
	if i := strings.IndexByte(h, ';'); i >= 0 {
		h = h[:i]
	}
	return strings.ToLower(strings.TrimSpace(h))
}

// ---------------------------------------------------------------------
// JSON codec

type jsonCodec struct{}

func (jsonCodec) Name() string        { return "json" }
func (jsonCodec) ContentType() string { return JSONContentType }

func decodeStrictJSON(raw []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("wire: malformed body: %w", err)
	}
	return nil
}

func checkVersion(v int) error {
	if v != Version {
		return fmt.Errorf("%w: request v%d, this build speaks v%d", ErrVersionMismatch, v, Version)
	}
	return nil
}

func (jsonCodec) EncodeEstimateRequest(req *EstimateRequest) ([]byte, error) {
	return json.Marshal(req)
}

func (jsonCodec) DecodeEstimateRequest(raw []byte) (*EstimateRequest, error) {
	var req EstimateRequest
	if err := decodeStrictJSON(raw, &req); err != nil {
		return nil, err
	}
	if err := checkVersion(req.V); err != nil {
		return nil, err
	}
	return &req, nil
}

func (jsonCodec) EncodeEstimateResponse(resp *EstimateResponse) ([]byte, error) {
	return json.Marshal(resp)
}

func (jsonCodec) DecodeEstimateResponse(raw []byte) (*EstimateResponse, error) {
	var resp EstimateResponse
	if err := decodeStrictJSON(raw, &resp); err != nil {
		return nil, err
	}
	if err := checkVersion(resp.V); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (jsonCodec) EncodeExecuteRequest(req *ExecuteRequest) ([]byte, error) {
	return json.Marshal(req)
}

func (jsonCodec) DecodeExecuteRequest(raw []byte) (*ExecuteRequest, error) {
	var req ExecuteRequest
	if err := decodeStrictJSON(raw, &req); err != nil {
		return nil, err
	}
	if err := checkVersion(req.V); err != nil {
		return nil, err
	}
	return &req, nil
}

func (jsonCodec) EncodeExecuteResponse(resp *ExecuteResponse) ([]byte, error) {
	return json.Marshal(resp)
}

func (jsonCodec) DecodeExecuteResponse(raw []byte) (*ExecuteResponse, error) {
	var resp ExecuteResponse
	if err := decodeStrictJSON(raw, &resp); err != nil {
		return nil, err
	}
	if err := checkVersion(resp.V); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ---------------------------------------------------------------------
// Binary codec

type binaryCodec struct{}

func (binaryCodec) Name() string        { return "binary" }
func (binaryCodec) ContentType() string { return BinaryContentType }

func frame(msgType byte, payload []byte) ([]byte, error) {
	if uint64(len(payload)) > math.MaxUint32 {
		return nil, fmt.Errorf("wire: %d-byte payload exceeds the u32 frame length", len(payload))
	}
	out := make([]byte, 0, frameHeaderLen+len(payload))
	out = append(out, 'P', 'W', BinaryVersion, msgType)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	return append(out, payload...), nil
}

// parseFrame validates the 8-byte header and returns the payload. The
// declared length must equal the remaining bytes exactly — a short body
// is truncation, a long one trailing garbage; both are ErrBadFrame.
func parseFrame(raw []byte, wantType byte) ([]byte, error) {
	if len(raw) < frameHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, shorter than the %d-byte header",
			ErrBadFrame, len(raw), frameHeaderLen)
	}
	if raw[0] != 'P' || raw[1] != 'W' {
		return nil, fmt.Errorf("%w: bad magic 0x%02x%02x", ErrBadFrame, raw[0], raw[1])
	}
	if raw[2] != BinaryVersion {
		return nil, fmt.Errorf("%w: frame v%d, this build speaks v%d",
			ErrVersionMismatch, raw[2], BinaryVersion)
	}
	if raw[3] != wantType {
		return nil, fmt.Errorf("%w: message type %d, want %d", ErrBadFrame, raw[3], wantType)
	}
	n := binary.LittleEndian.Uint32(raw[4:8])
	if uint64(n) != uint64(len(raw)-frameHeaderLen) {
		return nil, fmt.Errorf("%w: declared payload %d bytes, carried %d",
			ErrBadFrame, n, len(raw)-frameHeaderLen)
	}
	return raw[frameHeaderLen:], nil
}

// breader walks a frame payload; every read is bounds-checked so a
// hostile frame fails with ErrBadFrame instead of panicking.
type breader struct{ b []byte }

func (r *breader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated %s", ErrBadFrame, what)
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *breader) u64(what string) (uint64, error) {
	if len(r.b) < 8 {
		return 0, fmt.Errorf("%w: truncated %s", ErrBadFrame, what)
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

func (r *breader) finish() error {
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrBadFrame, len(r.b))
	}
	return nil
}

// openLo/openHi are the bit patterns of the open predicate [0,1] —
// query.New's untouched default. The binary codec elides open bounds:
// they travel as a clear bitmap bit and are restored on decode.
var openLo, openHi = FromFloat(0), FromFloat(1)

func appendQuery(buf []byte, q *Query) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(q.Tables)))
	for _, t := range q.Tables {
		if t < 0 {
			return nil, fmt.Errorf("wire: negative table index %d", t)
		}
		buf = binary.AppendUvarint(buf, uint64(t))
	}
	buf = binary.AppendUvarint(buf, uint64(len(q.Bounds)))
	bitmap := make([]byte, (len(q.Bounds)+7)/8)
	for i, b := range q.Bounds {
		if b[0] != openLo || b[1] != openHi {
			bitmap[i/8] |= 1 << (i % 8)
		}
	}
	buf = append(buf, bitmap...)
	for _, b := range q.Bounds {
		if b[0] == openLo && b[1] == openHi {
			continue
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(b[0]))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(b[1]))
	}
	return buf, nil
}

func (r *breader) query() (Query, error) {
	var q Query
	nt, err := r.uvarint("table count")
	if err != nil {
		return q, err
	}
	// Each table index costs at least one byte; a count the remaining
	// bytes cannot possibly hold is rejected before any allocation.
	if nt > maxTablesPerQuery || nt > uint64(len(r.b)) {
		return q, fmt.Errorf("%w: table count %d cannot fit the payload", ErrBadFrame, nt)
	}
	if nt > 0 {
		q.Tables = make([]int, nt)
		for i := range q.Tables {
			t, err := r.uvarint("table index")
			if err != nil {
				return q, err
			}
			if t > math.MaxInt32 {
				return q, fmt.Errorf("%w: table index %d out of range", ErrBadFrame, t)
			}
			q.Tables[i] = int(t)
		}
	}
	nb, err := r.uvarint("bound count")
	if err != nil {
		return q, err
	}
	if nb > maxBoundsPerQuery || (nb+7)/8 > uint64(len(r.b)) {
		return q, fmt.Errorf("%w: bound count %d cannot fit the payload", ErrBadFrame, nb)
	}
	bitmap := r.b[:(nb+7)/8]
	r.b = r.b[(nb+7)/8:]
	if nb%8 != 0 && len(bitmap) > 0 && bitmap[len(bitmap)-1]>>(nb%8) != 0 {
		return q, fmt.Errorf("%w: bound bitmap sets bits past the count", ErrBadFrame)
	}
	constrained := 0
	for _, bb := range bitmap {
		constrained += bits.OnesCount8(bb)
	}
	if uint64(constrained)*16 > uint64(len(r.b)) {
		return q, fmt.Errorf("%w: %d constrained bounds cannot fit the payload", ErrBadFrame, constrained)
	}
	q.Bounds = make([][2]B64, nb)
	for i := range q.Bounds {
		if bitmap[i/8]&(1<<(i%8)) == 0 {
			q.Bounds[i] = [2]B64{openLo, openHi}
			continue
		}
		lo, err := r.u64("bound")
		if err != nil {
			return q, err
		}
		hi, err := r.u64("bound")
		if err != nil {
			return q, err
		}
		if B64(lo) == openLo && B64(hi) == openHi {
			return q, fmt.Errorf("%w: non-canonical explicit open bound", ErrBadFrame)
		}
		q.Bounds[i] = [2]B64{B64(lo), B64(hi)}
	}
	return q, nil
}

func (r *breader) queries() ([]Query, error) {
	n, err := r.uvarint("query count")
	if err != nil {
		return nil, err
	}
	// A query payload costs at least two bytes (two zero counts).
	if n > MaxBatch || n > uint64(len(r.b)/2)+1 {
		return nil, fmt.Errorf("%w: query count %d exceeds the %d cap", ErrBadFrame, n, MaxBatch)
	}
	qs := make([]Query, n)
	for i := range qs {
		q, err := r.query()
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		qs[i] = q
	}
	return qs, nil
}

func (binaryCodec) EncodeEstimateRequest(req *EstimateRequest) ([]byte, error) {
	payload := binary.AppendUvarint(nil, uint64(len(req.Queries)))
	var err error
	for i := range req.Queries {
		if payload, err = appendQuery(payload, &req.Queries[i]); err != nil {
			return nil, err
		}
	}
	return frame(msgEstimateRequest, payload)
}

func (binaryCodec) DecodeEstimateRequest(raw []byte) (*EstimateRequest, error) {
	payload, err := parseFrame(raw, msgEstimateRequest)
	if err != nil {
		return nil, err
	}
	r := &breader{payload}
	qs, err := r.queries()
	if err != nil {
		return nil, err
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return &EstimateRequest{V: Version, Queries: qs}, nil
}

func (binaryCodec) EncodeEstimateResponse(resp *EstimateResponse) ([]byte, error) {
	payload := binary.AppendUvarint(nil, uint64(len(resp.Estimates)))
	for _, e := range resp.Estimates {
		payload = binary.LittleEndian.AppendUint64(payload, uint64(e))
	}
	return frame(msgEstimateResponse, payload)
}

func (binaryCodec) DecodeEstimateResponse(raw []byte) (*EstimateResponse, error) {
	payload, err := parseFrame(raw, msgEstimateResponse)
	if err != nil {
		return nil, err
	}
	r := &breader{payload}
	n, err := r.uvarint("estimate count")
	if err != nil {
		return nil, err
	}
	if n > MaxBatch || n > uint64(len(r.b)/8) {
		return nil, fmt.Errorf("%w: estimate count %d cannot fit the payload", ErrBadFrame, n)
	}
	ests := make([]B64, n)
	for i := range ests {
		v, err := r.u64("estimate")
		if err != nil {
			return nil, err
		}
		ests[i] = B64(v)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return &EstimateResponse{V: Version, Estimates: ests}, nil
}

func (binaryCodec) EncodeExecuteRequest(req *ExecuteRequest) ([]byte, error) {
	if len(req.Cards) != len(req.Queries) {
		return nil, fmt.Errorf("wire: %d queries with %d cards", len(req.Queries), len(req.Cards))
	}
	payload := binary.AppendUvarint(nil, uint64(len(req.Queries)))
	var err error
	for i := range req.Queries {
		if payload, err = appendQuery(payload, &req.Queries[i]); err != nil {
			return nil, err
		}
	}
	for _, c := range req.Cards {
		payload = binary.LittleEndian.AppendUint64(payload, uint64(c))
	}
	return frame(msgExecuteRequest, payload)
}

func (binaryCodec) DecodeExecuteRequest(raw []byte) (*ExecuteRequest, error) {
	payload, err := parseFrame(raw, msgExecuteRequest)
	if err != nil {
		return nil, err
	}
	r := &breader{payload}
	qs, err := r.queries()
	if err != nil {
		return nil, err
	}
	// The card lane's length is implied: one u64 per query.
	cards := make([]B64, len(qs))
	for i := range cards {
		v, err := r.u64("card")
		if err != nil {
			return nil, err
		}
		cards[i] = B64(v)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return &ExecuteRequest{V: Version, Queries: qs, Cards: cards}, nil
}

func (binaryCodec) EncodeExecuteResponse(resp *ExecuteResponse) ([]byte, error) {
	if resp.Executed < 0 {
		return nil, fmt.Errorf("wire: negative executed count %d", resp.Executed)
	}
	return frame(msgExecuteResponse, binary.AppendUvarint(nil, uint64(resp.Executed)))
}

func (binaryCodec) DecodeExecuteResponse(raw []byte) (*ExecuteResponse, error) {
	payload, err := parseFrame(raw, msgExecuteResponse)
	if err != nil {
		return nil, err
	}
	r := &breader{payload}
	n, err := r.uvarint("executed count")
	if err != nil {
		return nil, err
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("%w: executed count %d out of range", ErrBadFrame, n)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return &ExecuteResponse{V: Version, Executed: int(n)}, nil
}
