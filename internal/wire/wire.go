// Package wire defines the versioned JSON protocol spoken between the
// paced estimator service (internal/targetserver) and its clients
// (internal/remote). The codec is canonical and lossless: every float64
// that matters — predicate bounds and cardinality labels — travels as
// its IEEE-754 bit pattern, so a query decoded on the server has exactly
// the same query.Key as the one the client encoded (join bits + bound
// bit patterns, including ±Inf, subnormals and negative zero). Estimates
// travel the same way, which is what makes a remote campaign bit-identical
// to an in-process one for a fixed seed.
//
// The protocol is deliberately schema-bound: client and server must be
// built against the same query.Meta (same dataset + scale + seed). The
// server validates every decoded query's shape against its meta and
// rejects mismatches as invalid queries, never guessing.
package wire

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"pace/internal/query"
)

// Version is the protocol version this build speaks. Requests carry it
// in the "v" field; the server rejects any other value with
// CodeBadRequest, so an incompatible client fails fast instead of
// decoding garbage.
const Version = 1

// MaxBatch is the hard per-request query cap the server enforces
// regardless of its configured micro-batch size; it bounds request
// memory, not throughput.
const MaxBatch = 4096

// B64 transports a float64 as its IEEE-754 bit pattern. encoding/json
// round-trips uint64 exactly (all 20 digits), which float64 JSON
// formatting cannot promise for NaN payloads and does not permit at all
// for ±Inf.
type B64 uint64

// FromFloat captures f's bit pattern.
func FromFloat(f float64) B64 { return B64(math.Float64bits(f)) }

// Float reconstructs the exact float64.
func (b B64) Float() float64 { return math.Float64frombits(uint64(b)) }

// FromFloats converts a float slice to bit patterns.
func FromFloats(fs []float64) []B64 {
	out := make([]B64, len(fs))
	for i, f := range fs {
		out[i] = FromFloat(f)
	}
	return out
}

// ToFloats converts bit patterns back to floats.
func ToFloats(bs []B64) []float64 {
	out := make([]float64, len(bs))
	for i, b := range bs {
		out[i] = b.Float()
	}
	return out
}

// Query is the wire form of a query.Query: the indexes of the joined
// tables (ascending) and the per-attribute [lo, hi] bound bit patterns
// for every attribute of the schema, constrained or not.
type Query struct {
	Tables []int    `json:"t"`
	Bounds [][2]B64 `json:"b"`
}

// EncodeQuery converts q to its wire form. It encodes q verbatim — no
// normalization — so the decoded query is Key-identical to q.
func EncodeQuery(q *query.Query) Query {
	wq := Query{Bounds: make([][2]B64, len(q.Bounds))}
	for t, in := range q.Tables {
		if in {
			wq.Tables = append(wq.Tables, t)
		}
	}
	for a, b := range q.Bounds {
		wq.Bounds[a] = [2]B64{FromFloat(b[0]), FromFloat(b[1])}
	}
	return wq
}

// EncodeQueries converts a batch.
func EncodeQueries(qs []*query.Query) []Query {
	out := make([]Query, len(qs))
	for i, q := range qs {
		out[i] = EncodeQuery(q)
	}
	return out
}

// Decode reconstructs the query against m, validating its shape: table
// indexes must be in range and strictly ascending, and the bound list
// must cover exactly the schema's attributes. Bounds are restored
// bit-for-bit (no clamping), preserving query.Key.
func (wq Query) Decode(m *query.Meta) (*query.Query, error) {
	if len(wq.Bounds) != m.NumAttrs() {
		return nil, fmt.Errorf("wire: query has %d bounds, schema has %d attributes",
			len(wq.Bounds), m.NumAttrs())
	}
	q := &query.Query{
		Tables: make([]bool, m.NumTables()),
		Bounds: make([][2]float64, len(wq.Bounds)),
	}
	if !sort.IntsAreSorted(wq.Tables) {
		return nil, errors.New("wire: table indexes not ascending")
	}
	for i, t := range wq.Tables {
		if t < 0 || t >= m.NumTables() {
			return nil, fmt.Errorf("wire: table index %d out of range [0,%d)", t, m.NumTables())
		}
		if i > 0 && wq.Tables[i-1] == t {
			return nil, fmt.Errorf("wire: duplicate table index %d", t)
		}
		q.Tables[t] = true
	}
	for a, b := range wq.Bounds {
		q.Bounds[a] = [2]float64{b[0].Float(), b[1].Float()}
	}
	return q, nil
}

// DecodeQueries reconstructs a batch, failing on the first bad query.
func DecodeQueries(m *query.Meta, wqs []Query) ([]*query.Query, error) {
	out := make([]*query.Query, len(wqs))
	for i, wq := range wqs {
		q, err := wq.Decode(m)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		out[i] = q
	}
	return out, nil
}

// EstimateRequest asks for the estimator's cardinality estimate of each
// query. POST /v1/estimate.
type EstimateRequest struct {
	V       int     `json:"v"`
	Queries []Query `json:"queries"`
}

// EstimateResponse carries one estimate per request query, in order, as
// exact bit patterns.
type EstimateResponse struct {
	V         int   `json:"v"`
	Estimates []B64 `json:"estimates"`
}

// ExecuteRequest reports executed queries and their true cardinalities —
// the feedback channel that drives the estimator's incremental
// retraining. POST /v1/execute.
type ExecuteRequest struct {
	V       int     `json:"v"`
	Queries []Query `json:"queries"`
	Cards   []B64   `json:"cards"`
}

// ExecuteResponse acknowledges an executed batch.
type ExecuteResponse struct {
	V        int `json:"v"`
	Executed int `json:"executed"`
}

// Error codes carried by ErrorResponse. The client maps them onto the
// pipeline's error taxonomy (see internal/remote):
//
//	bad_request, invalid_query      → permanent (ce.ErrInvalidQuery)
//	unknown_target, target_exists   → permanent (the tenant route is wrong)
//	unauthorized                    → permanent (fix the bearer token)
//	rate_limited, overloaded        → transient, back off (429 + Retry-After)
//	quota_exceeded                  → transient-ish (429 + Retry-After; free a
//	                                  tenant slot, or wait for idle eviction)
//	draining, not_ready, internal   → transient (retry against a healthy peer)
//	evicted                         → transient (503 + Retry-After; the first
//	                                  request triggers lazy revival — retry
//	                                  until the tenant is rebuilt)
const (
	CodeBadRequest    = "bad_request"
	CodeInvalidQuery  = "invalid_query"
	CodeRateLimited   = "rate_limited"
	CodeOverloaded    = "overloaded"
	CodeDraining      = "draining"
	CodeInternal      = "internal"
	CodeUnknownTarget = "unknown_target"
	CodeTargetExists  = "target_exists"
	CodeUnauthorized  = "unauthorized"
	CodeNotReady      = "not_ready"
	CodeQuotaExceeded = "quota_exceeded"
	CodeEvicted       = "evicted"
	// CodeBadFrame marks a binary frame the parser rejected (400,
	// permanent — re-encoding the same frame cannot help).
	CodeBadFrame = "bad_frame"
	// CodeUnsupportedMedia marks a Content-Type the server does not
	// speak (415). Clients downgrade to JSON and resend.
	CodeUnsupportedMedia = "unsupported_media"
	// CodeUnknownExecution marks a streamed-execute token the server
	// does not know (404) — never opened, or already deleted.
	CodeUnknownExecution = "unknown_execution"
)

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	V     int    `json:"v"`
	Code  string `json:"code"`
	Error string `json:"error"`
}

// TargetSpec names the world a tenant should host — what POST
// /v1/targets accepts. A fixed (dataset, model, seed, seed_offset,
// scale) spec always provisions a victim with bit-identical weights.
type TargetSpec struct {
	ID         string  `json:"id"`
	Dataset    string  `json:"dataset"`
	Model      string  `json:"model"`
	Seed       int64   `json:"seed"`
	SeedOffset int64   `json:"seed_offset,omitempty"`
	Scale      float64 `json:"scale,omitempty"`
	// CacheSize enables the tenant's LRU estimate cache (a modeled DBMS
	// plan cache) with this many entries; 0 disables it.
	CacheSize int `json:"cache_size,omitempty"`
}

// TargetInfo is one tenant's directory entry: its spec plus lifecycle
// state ("creating", "ready" or "draining").
type TargetInfo struct {
	TargetSpec
	State string `json:"state"`
}

// CreateTargetRequest provisions a tenant at runtime. POST /v1/targets.
// The call blocks until the world is trained (or fails); while it runs,
// the tenant lists as "creating" and duplicate creates answer 409.
type CreateTargetRequest struct {
	V      int        `json:"v"`
	Target TargetSpec `json:"target"`
}

// CreateTargetResponse acknowledges a provisioned tenant.
type CreateTargetResponse struct {
	V      int        `json:"v"`
	Target TargetInfo `json:"target"`
}

// ListTargetsResponse is the directory listing. GET /v1/targets.
type ListTargetsResponse struct {
	V       int          `json:"v"`
	Targets []TargetInfo `json:"targets"`
}

// DeleteTargetResponse acknowledges a drained-and-removed tenant.
// DELETE /v1/targets/{id}.
type DeleteTargetResponse struct {
	V       int    `json:"v"`
	Deleted string `json:"deleted"`
}

// HealthzResponse reports overall service health plus each tenant's
// readiness state, so load balancers and harnesses can watch tenants
// independently. GET /healthz (per-tenant form: GET
// /v1/targets/{id}/healthz answers 200 only for a ready tenant).
type HealthzResponse struct {
	Status  string            `json:"status"` // "ok" or "draining"
	Tenants map[string]string `json:"tenants"`
}

// BackendStatus is one fleet member's health entry: its base URL, the
// router's current up/down verdict, and how many tenants it hosts.
type BackendStatus struct {
	URL     string `json:"url"`
	Up      bool   `json:"up"`
	Tenants int    `json:"tenants"`
}

// TenantPlacement reports where the router has placed a tenant and what
// lifecycle state the placement is in ("ready", "rebuilding" or
// "evicted"). Backend is empty while evicted.
type TenantPlacement struct {
	State   string `json:"state"`
	Backend string `json:"backend,omitempty"`
}

// FleetStatusResponse is pacerouter's admin view: per-backend health and
// the tenant placement map. GET /v1/fleet.
type FleetStatusResponse struct {
	V        int                        `json:"v"`
	Status   string                     `json:"status"` // "ok" or "degraded"
	Backends []BackendStatus            `json:"backends"`
	Tenants  map[string]TenantPlacement `json:"tenants"`
}

// ChunkSeqHeader carries the 0-based sequence number of one streamed
// execute chunk (POST /v1/targets/{id}/executions/{token}). The
// (token, seq) pair is the idempotency key: resubmitting an
// already-acked chunk — after a timeout, or a whole-stream retry
// through a failover — is acked again without re-applying it.
const ChunkSeqHeader = "X-Pace-Chunk-Seq"

// TraceHeader carries distributed-trace context on every data-path
// request, in W3C traceparent form: 00-<32 hex trace>-<16 hex span>-01.
// The span field is the caller's current span ID; the receiving process
// parents its server-side spans under it so a fleet-wide trace merge
// (cmd/pacetrace) stitches the per-process JSONL files into one tree.
// Requests without the header are served normally but untraced.
const TraceHeader = "X-Pace-Trace"

// Execution states reported by ExecutionResponse.
const (
	// ExecutionRunning: chunks are enqueued and retraining.
	ExecutionRunning = "running"
	// ExecutionDone: every acked chunk has applied and none failed. The
	// client-side completion condition is: all chunks acked AND the
	// polled state is done.
	ExecutionDone = "done"
	// ExecutionFailed: a chunk's retrain errored; Error carries it.
	// Acks keep deduplicating, but the stream cannot succeed.
	ExecutionFailed = "failed"
)

// MaxExecutionToken bounds a client-supplied execution token.
const MaxExecutionToken = 128

// ValidExecutionToken reports whether a token is usable in a route:
// non-empty, bounded, URL-safe charset.
func ValidExecutionToken(tok string) bool {
	if tok == "" || len(tok) > MaxExecutionToken {
		return false
	}
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// OpenExecutionRequest opens (or idempotently re-opens) a streamed
// execute: POST /v1/targets/{id}/executions. The token is
// client-supplied — internal/remote derives it from the stream's
// content, so a whole-stream retry reuses the token and every chunk
// deduplicates on (token, seq).
type OpenExecutionRequest struct {
	V     int    `json:"v"`
	Token string `json:"token"`
}

// ExecutionResponse reports one execution's progress. It answers the
// open (200), every chunk ack (202 — the chunk is enqueued, not yet
// retrained), the status poll (200) and the delete (200). Control-plane
// messages travel as JSON regardless of the negotiated data codec.
type ExecutionResponse struct {
	V     int    `json:"v"`
	Token string `json:"token"`
	// State is running, done or failed.
	State string `json:"state"`
	// Pending counts chunks enqueued but not yet applied; Applied counts
	// chunks retrained; Queries counts queries across applied chunks.
	Pending int64 `json:"pending"`
	Applied int64 `json:"applied"`
	Queries int64 `json:"queries"`
	// Error carries the first chunk failure (state failed).
	Error string `json:"error,omitempty"`
}

// RetryAfter renders a Retry-After header value (whole seconds, min 1)
// from a duration hint.
func RetryAfter(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}
