package defense

import (
	"math/rand"
	"testing"

	"pace/internal/query"
)

// synthetic poison cluster: narrow predicates everywhere.
func poisonEnc(n, dim int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := 0; j < dim; j += 2 {
			lo := 0.3 + 0.1*rng.Float64()
			v[j] = lo
			if j+1 < dim {
				v[j+1] = lo + 0.02*rng.Float64()
			}
		}
		out[i] = v
	}
	return out
}

// synthetic benign queries: moderate ranges.
func benignEnc(n, dim int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := 0; j < dim; j += 2 {
			lo := rng.Float64() * 0.5
			v[j] = lo
			if j+1 < dim {
				v[j+1] = lo + 0.3 + rng.Float64()*0.4
				if v[j+1] > 1 {
					v[j+1] = 1
				}
			}
		}
		out[i] = v
	}
	return out
}

func TestClassifierSeparates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dim := 12
	c := New(dim, Config{Hidden: 16, Epochs: 30}, rng)
	c.Train(poisonEnc(200, dim, rng), benignEnc(200, dim, rng))

	eval := c.Evaluate(poisonEnc(80, dim, rng), benignEnc(80, dim, rng))
	if eval.Recall() < 0.8 {
		t.Errorf("recall %.2f, want >= 0.8", eval.Recall())
	}
	if eval.FalsePositiveRate() > 0.2 {
		t.Errorf("false-positive rate %.2f, want <= 0.2", eval.FalsePositiveRate())
	}
	if eval.Precision() < 0.7 {
		t.Errorf("precision %.2f, want >= 0.7", eval.Precision())
	}
}

func TestScoreInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := New(6, Config{Hidden: 8, Epochs: 5}, rng)
	c.Train(poisonEnc(20, 6, rng), benignEnc(20, 6, rng))
	for i := 0; i < 20; i++ {
		v := benignEnc(1, 6, rng)[0]
		s := c.Score(v)
		if s < 0 || s > 1 {
			t.Fatalf("score %g outside [0,1]", s)
		}
	}
}

func TestTrainEmptyIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := New(4, Config{}, rng)
	c.Train(nil, nil) // must not panic
	if s := c.Score([]float64{0, 0, 0, 0}); s < 0 || s > 1 {
		t.Errorf("score %g after empty training", s)
	}
}

func TestFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	meta := &query.Meta{
		TableNames: []string{"t"},
		AttrNames:  []string{"t.a", "t.b"},
		AttrOffset: []int{0, 2},
	}
	dim := meta.Dim() // 1 + 4 = 5
	c := New(dim, Config{Hidden: 12, Epochs: 30}, rng)

	mkQuery := func(lo, hi float64) *query.Query {
		q := query.New(meta)
		q.Tables[0] = true
		q.Bounds[0] = [2]float64{lo, hi}
		q.Normalize(meta)
		return q
	}
	var poison, benign [][]float64
	var poisonQ, benignQ []*query.Query
	for i := 0; i < 150; i++ {
		p := mkQuery(0.4+0.1*rng.Float64(), 0.52+0.1*rng.Float64())
		p.Bounds[0][1] = p.Bounds[0][0] + 0.01 // razor-thin
		b := mkQuery(rng.Float64()*0.3, 0.6+rng.Float64()*0.4)
		poison = append(poison, p.Encode(meta))
		benign = append(benign, b.Encode(meta))
		if i < 20 {
			poisonQ = append(poisonQ, p)
			benignQ = append(benignQ, b)
		}
	}
	c.Train(poison, benign)

	accepted, rejected := c.Filter(meta, append(benignQ, poisonQ...))
	if len(accepted)+len(rejected) != 40 {
		t.Fatalf("filter lost queries: %d + %d", len(accepted), len(rejected))
	}
	if len(rejected) < 10 {
		t.Errorf("only %d/20 poison queries rejected", len(rejected))
	}
	if len(accepted) < 10 {
		t.Errorf("only %d/20 benign queries accepted", len(accepted))
	}
}

func TestEvaluationMetricsEdgeCases(t *testing.T) {
	var e Evaluation
	if e.Recall() != 0 || e.Precision() != 0 || e.FalsePositiveRate() != 0 {
		t.Error("empty evaluation should report zeros")
	}
	e = Evaluation{TruePositive: 8, FalseNegative: 2, FalsePositive: 1, TrueNegative: 9}
	if e.Recall() != 0.8 {
		t.Errorf("recall = %g", e.Recall())
	}
	if e.Precision() != 8.0/9.0 {
		t.Errorf("precision = %g", e.Precision())
	}
	if e.FalsePositiveRate() != 0.1 {
		t.Errorf("fpr = %g", e.FalsePositiveRate())
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Hidden != 32 || c.Epochs != 40 || c.Threshold != 0.5 {
		t.Errorf("defaults = %+v", c)
	}
}
