// Package defense implements the paper's first future-work direction
// (§8, "Improve the learned database systems"): using PACE itself to
// harden a learned database. A binary classifier is trained on
// PACE-generated poisoning queries (positive class) versus historical
// queries (negative class); deployed in front of the CE model's update
// path, it screens incoming queries so the model never retrains on
// recognized poison.
package defense

import (
	"math/rand"

	"pace/internal/nn"
	"pace/internal/query"
)

// Config sizes and schedules the classifier.
type Config struct {
	// Hidden is the MLP hidden width (default 32).
	Hidden int
	// Epochs and Batch control training (defaults 40 and 32).
	Epochs, Batch int
	// LR is the Adam learning rate (default 3e-3).
	LR float64
	// Threshold is the poison-probability cutoff (default 0.5).
	Threshold float64
}

func (c Config) withDefaults() Config {
	if c.Hidden == 0 {
		c.Hidden = 32
	}
	if c.Epochs == 0 {
		c.Epochs = 40
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	if c.LR == 0 {
		c.LR = 3e-3
	}
	if c.Threshold == 0 {
		c.Threshold = 0.5
	}
	return c
}

// Classifier screens query encodings for poisoning.
type Classifier struct {
	cfg Config
	net *nn.MLP
	rng *rand.Rand
}

// New builds an untrained classifier for encodings of dimension dim.
func New(dim int, cfg Config, rng *rand.Rand) *Classifier {
	cfg = cfg.withDefaults()
	return &Classifier{
		cfg: cfg,
		net: nn.NewMLP("defense", []int{dim, cfg.Hidden, cfg.Hidden, 1},
			nn.NewReLU, nn.NewSigmoid, rng),
		rng: rng,
	}
}

// Train fits the classifier with binary cross-entropy on poison
// (label 1) versus historical (label 0) encodings.
func (c *Classifier) Train(poison, history [][]float64) {
	type example struct {
		v []float64
		y float64
	}
	var examples []example
	for _, v := range poison {
		examples = append(examples, example{v, 1})
	}
	for _, v := range history {
		examples = append(examples, example{v, 0})
	}
	if len(examples) == 0 {
		return
	}
	opt := nn.NewAdam(c.net.Params(), c.cfg.LR)
	idx := c.rng.Perm(len(examples))
	for ep := 0; ep < c.cfg.Epochs; ep++ {
		c.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for lo := 0; lo < len(idx); lo += c.cfg.Batch {
			hi := lo + c.cfg.Batch
			if hi > len(idx) {
				hi = len(idx)
			}
			for _, i := range idx[lo:hi] {
				ex := examples[i]
				p := nn.Clamp(c.net.Forward(ex.v)[0], 1e-6, 1-1e-6)
				// d/dp of BCE; the sigmoid head turns this into the
				// usual (p − y) pre-activation gradient.
				c.net.Backward([]float64{(p - ex.y) / (p * (1 - p))})
			}
			opt.Step(1 / float64(hi-lo))
		}
	}
}

// Score returns the classifier's poison probability for an encoding.
func (c *Classifier) Score(v []float64) float64 { return c.net.Forward(v)[0] }

// IsPoison reports whether the encoding scores above the threshold.
func (c *Classifier) IsPoison(v []float64) bool { return c.Score(v) > c.cfg.Threshold }

// Filter splits queries into accepted (below threshold) and rejected,
// preserving order — the screening step in front of the CE update path.
func (c *Classifier) Filter(meta *query.Meta, qs []*query.Query) (accepted, rejected []*query.Query) {
	for _, q := range qs {
		if c.IsPoison(q.Encode(meta)) {
			rejected = append(rejected, q)
		} else {
			accepted = append(accepted, q)
		}
	}
	return accepted, rejected
}

// Evaluation summarizes classifier quality on labeled encodings.
type Evaluation struct {
	TruePositive, FalsePositive int
	TrueNegative, FalseNegative int
}

// Evaluate scores poison and history sets.
func (c *Classifier) Evaluate(poison, history [][]float64) Evaluation {
	var e Evaluation
	for _, v := range poison {
		if c.IsPoison(v) {
			e.TruePositive++
		} else {
			e.FalseNegative++
		}
	}
	for _, v := range history {
		if c.IsPoison(v) {
			e.FalsePositive++
		} else {
			e.TrueNegative++
		}
	}
	return e
}

// Recall is the fraction of poison caught.
func (e Evaluation) Recall() float64 {
	if e.TruePositive+e.FalseNegative == 0 {
		return 0
	}
	return float64(e.TruePositive) / float64(e.TruePositive+e.FalseNegative)
}

// Precision is the fraction of flagged queries that were poison.
func (e Evaluation) Precision() float64 {
	if e.TruePositive+e.FalsePositive == 0 {
		return 0
	}
	return float64(e.TruePositive) / float64(e.TruePositive+e.FalsePositive)
}

// FalsePositiveRate is the fraction of benign queries wrongly flagged.
func (e Evaluation) FalsePositiveRate() float64 {
	if e.FalsePositive+e.TrueNegative == 0 {
		return 0
	}
	return float64(e.FalsePositive) / float64(e.FalsePositive+e.TrueNegative)
}
