package workloadgen

import (
	"math"
	"math/rand"
)

// Interarrival sampling. Every sampler draws from a *rand.Rand the
// caller owns (one private splitmix64-split stream per client), and
// every sample is normalized to mean 1 so the client's rate is applied
// uniformly afterwards: interarrival = sample / rate. Burstiness is the
// *shape* of the distribution (its coefficient of variation), not its
// mean — equal-mean workloads with different shapes is exactly the
// comparison BENCH_remote.json's uniform-vs-bursty row makes.

// meanOneSampler returns a mean-1 interarrival sampler for the process.
// The spec must be validated first (unknown processes panic).
func meanOneSampler(a ArrivalSpec) func(*rand.Rand) float64 {
	switch a.Process {
	case "poisson":
		// Exponential(1): CV = 1, the memoryless baseline.
		return func(rng *rand.Rand) float64 { return rng.ExpFloat64() }
	case "gamma":
		// Gamma(k, 1/k): CV = 1/√k, so k < 1 is burstier than Poisson
		// (clustered arrivals separated by long gaps), k > 1 smoother.
		k := a.Shape
		return func(rng *rand.Rand) float64 { return gammaSample(rng, k) / k }
	case "weibull":
		// Weibull(k) scaled by 1/Γ(1+1/k): k < 1 gives a heavy tail of
		// long gaps with dense clusters between them.
		k := a.Shape
		norm := math.Gamma(1 + 1/k)
		return func(rng *rand.Rand) float64 {
			u := 1 - rng.Float64() // (0,1]: log never sees 0
			return math.Pow(-math.Log(u), 1/k) / norm
		}
	default:
		panic("workloadgen: unvalidated arrival process " + a.Process)
	}
}

// gammaSample draws Gamma(k, 1) by Marsaglia–Tsang squeeze for k ≥ 1,
// with the standard boost Gamma(k) = Gamma(k+1)·U^{1/k} for k < 1.
func gammaSample(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		u := 1 - rng.Float64()
		return gammaSample(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := 1 - rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// onOffClock maps a client's "active" arrival process onto wall time
// through alternating exponential on/off windows: arrivals only land in
// on-windows, and the caller boosts the within-window rate by
// (on+off)/on so the client's mean offered rate is unchanged. The
// result is ServeGen-style coordinated burstiness — idle gaps followed
// by windows of concentrated fire.
type onOffClock struct {
	rng          *rand.Rand
	onMean       float64
	offMean      float64
	wall         float64 // wall-time cursor, seconds
	onRemaining  float64 // seconds of the current on-window past the cursor
}

// newOnOffClock starts a client's window sequence. The initial phase is
// randomized from the client's own stream (an exp(off) delay with
// probability off/(on+off)), so a fleet of clients does not fire one
// synthetic all-hands burst at t = 0.
func newOnOffClock(rng *rand.Rand, oo *OnOffSpec) *onOffClock {
	c := &onOffClock{rng: rng, onMean: oo.OnSec, offMean: oo.OffSec}
	if rng.Float64() < oo.OffSec/(oo.OnSec+oo.OffSec) {
		c.wall = oo.OffSec * rng.ExpFloat64()
	}
	c.onRemaining = c.onMean * rng.ExpFloat64()
	return c
}

// advance consumes d seconds of active (on-window) time and returns the
// wall-clock timestamp the active process reaches, skipping off-windows.
func (c *onOffClock) advance(d float64) float64 {
	for d > c.onRemaining {
		d -= c.onRemaining
		c.wall += c.onRemaining
		c.wall += c.offMean * c.rng.ExpFloat64()
		c.onRemaining = c.onMean * c.rng.ExpFloat64()
	}
	c.wall += d
	c.onRemaining -= d
	return c.wall
}

// boost is the rate multiplier that keeps the mean offered rate equal
// when arrivals are squeezed into on-windows.
func (o *OnOffSpec) boost() float64 {
	if o == nil {
		return 1
	}
	return (o.OnSec + o.OffSec) / o.OnSec
}
