package workloadgen

import (
	"math/rand"
	"sort"

	"pace/internal/query"
)

// Empirical query-shape fitting: instead of replaying a pool
// round-robin, the generator draws queries whose *shape mix* matches a
// fitted source workload — how many tables they join (the join bits),
// how many predicates they carry, and how wide those predicates are.
// Fit a ShapeDist from a historical workload file, build a Sampler over
// the pool to replay, and the replayed stream presents the shape
// distribution the estimator actually saw in production, even when the
// concrete queries differ.

// shapeSig is one bucket of the shape histogram.
type shapeSig struct {
	// Tables is the number of joined tables (the popcount of the join
	// bits).
	Tables int
	// Preds is the number of non-open predicates.
	Preds int
	// WidthB buckets the mean width of non-open predicates into
	// widthBuckets equal bins; a query with no predicates lands in the
	// widest bin.
	WidthB int
}

const widthBuckets = 4

// signatureOf computes a query's shape bucket.
func signatureOf(q *query.Query) shapeSig {
	var sig shapeSig
	for _, in := range q.Tables {
		if in {
			sig.Tables++
		}
	}
	var widthSum float64
	for _, b := range q.Bounds {
		if b[0] > 0 || b[1] < 1 {
			sig.Preds++
			widthSum += b[1] - b[0]
		}
	}
	if sig.Preds == 0 {
		sig.WidthB = widthBuckets - 1
		return sig
	}
	w := widthSum / float64(sig.Preds)
	sig.WidthB = int(w * widthBuckets)
	if sig.WidthB >= widthBuckets {
		sig.WidthB = widthBuckets - 1
	}
	return sig
}

// ShapeDist is an empirical joint histogram over query shapes.
type ShapeDist struct {
	counts map[shapeSig]int
	total  int
}

// FitShapes builds the shape histogram of a workload.
func FitShapes(qs []*query.Query) *ShapeDist {
	d := &ShapeDist{counts: make(map[shapeSig]int)}
	for _, q := range qs {
		d.counts[signatureOf(q)]++
		d.total++
	}
	return d
}

// Sampler draws pool indices so the drawn stream's shape mix tracks a
// fitted distribution. A nil Sampler (or one built from a nil dist)
// draws uniformly — the round-robin-equivalent fallback.
type Sampler struct {
	pool int
	// groups[g] lists the pool indexes in shape bucket g; cum[g] is the
	// cumulative fitted weight through bucket g. Buckets are sorted so
	// construction order never leaks into draws.
	groups [][]int
	cum    []float64
}

// NewSampler matches the fitted distribution against the replay pool.
// Shape buckets present in the fit but absent from the pool contribute
// nothing (logged by the caller if it cares); pool queries whose bucket
// the fit never saw are drawn only if no bucket overlaps at all, in
// which case the sampler degrades to uniform.
func NewSampler(d *ShapeDist, pool []*query.Query) *Sampler {
	s := &Sampler{pool: len(pool)}
	if d == nil || d.total == 0 || len(pool) == 0 {
		return s
	}
	bySig := make(map[shapeSig][]int)
	for i, q := range pool {
		sig := signatureOf(q)
		bySig[sig] = append(bySig[sig], i)
	}
	sigs := make([]shapeSig, 0, len(bySig))
	for sig := range bySig {
		if d.counts[sig] > 0 {
			sigs = append(sigs, sig)
		}
	}
	if len(sigs) == 0 {
		return s // no overlap: uniform fallback
	}
	sort.Slice(sigs, func(i, j int) bool {
		a, b := sigs[i], sigs[j]
		if a.Tables != b.Tables {
			return a.Tables < b.Tables
		}
		if a.Preds != b.Preds {
			return a.Preds < b.Preds
		}
		return a.WidthB < b.WidthB
	})
	var acc float64
	for _, sig := range sigs {
		acc += float64(d.counts[sig])
		s.groups = append(s.groups, bySig[sig])
		s.cum = append(s.cum, acc)
	}
	return s
}

// Draw picks one pool index from rng.
func (s *Sampler) Draw(rng *rand.Rand) int {
	if s == nil || len(s.groups) == 0 {
		return rng.Intn(s.poolSize())
	}
	r := rng.Float64() * s.cum[len(s.cum)-1]
	g := sort.SearchFloat64s(s.cum, r)
	if g >= len(s.groups) {
		g = len(s.groups) - 1
	}
	grp := s.groups[g]
	return grp[rng.Intn(len(grp))]
}

func (s *Sampler) poolSize() int {
	if s == nil || s.pool == 0 {
		return 1
	}
	return s.pool
}
