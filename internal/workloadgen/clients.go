package workloadgen

import (
	"fmt"
	"math"

	"pace/internal/engine"
)

// Client is one member of the generated population: a stable identity
// (sent as X-Pace-Client so the server's per-client token buckets see a
// realistic mix), its mean offered rate, and its SLO class.
type Client struct {
	ID    string  `json:"id"`
	Rate  float64 `json:"rate_qps"`
	Class string  `json:"class"`
}

// Seed-derivation offsets: the population's rate and class draws use
// streams disjoint from every per-client arrival/query stream (which
// use non-negative offsets 2i and 2i+1).
const (
	rateSeedIdx  int64 = -1
	classSeedIdx int64 = -2
)

// population builds the client roster of a validated spec: N clients
// with RateDist-skewed rates summing to MeanQPS, each assigned an SLO
// class by weighted draw. Construction is serial and draws only from
// dedicated streams, so the roster is a pure function of the spec.
func population(spec Spec) []Client {
	n := spec.Clients.N
	weights := make([]float64, n)
	switch spec.Clients.RateDist {
	case "zipf":
		// Rank-frequency: client k carries weight 1/(k+1)^s. The head
		// clients dominate traffic the way a few hot applications
		// dominate a shared estimator service.
		for i := range weights {
			weights[i] = 1 / math.Pow(float64(i+1), spec.Clients.ZipfS)
		}
	case "lognormal":
		rng := engine.SplitRNG(spec.Seed, rateSeedIdx)
		for i := range weights {
			weights[i] = math.Exp(spec.Clients.Sigma * rng.NormFloat64())
		}
	case "uniform":
		for i := range weights {
			weights[i] = 1
		}
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}

	classRng := engine.SplitRNG(spec.Seed, classSeedIdx)
	var classSum float64
	for _, c := range spec.Classes {
		classSum += c.Weight
	}

	out := make([]Client, n)
	for i := range out {
		r := classRng.Float64() * classSum
		class := spec.Classes[len(spec.Classes)-1].Name
		for _, c := range spec.Classes {
			if r < c.Weight {
				class = c.Name
				break
			}
			r -= c.Weight
		}
		out[i] = Client{
			ID:    fmt.Sprintf("c%03d", i),
			Rate:  spec.Clients.MeanQPS * weights[i] / sum,
			Class: class,
		}
	}
	return out
}
