package workloadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"pace/internal/query"
)

// JSONL trace format — record once, replay anywhere.
//
// Line 1 is the header; then one line per pool query in index order;
// then one line per arrival in schedule order. Every line is a single
// JSON object, so the file greps and jq's like the other artifacts in
// this repo. Writing is crash-safe the way internal/dataset chunks are:
// the whole trace lands in a *.tmp sibling, is fsynced, and renames
// into place — a torn write never leaves a truncated file that parses.
//
// Compatibility rules (enforced by ReadTrace):
//   - the header's schema must equal TraceSchema — a future breaking
//     change bumps the number and old readers refuse loudly;
//   - the header's table/attr counts must match the replaying dataset's
//     meta — a trace recorded against one schema never silently replays
//     against another;
//   - query and arrival counts must match the header, arrival times
//     must be non-decreasing, and every index must be in range.
//
// Determinism: encoding uses only structs (no maps), so the same
// Schedule always serializes to the same bytes — the record/replay
// tests assert byte identity, not just semantic equality.

// TraceSchema versions the trace file format.
const TraceSchema = 1

// traceHeader is line 1 of a trace.
type traceHeader struct {
	Schema   int    `json:"schema"`
	Kind     string `json:"kind"`
	Tables   int    `json:"tables"`
	Attrs    int    `json:"attrs"`
	Spec     Spec   `json:"spec"`
	Clients  []Client `json:"clients"`
	Queries  int    `json:"queries"`
	Arrivals int    `json:"arrivals"`
}

const traceKind = "pace-workload-trace"

// traceQuery is one pool query: joined table indexes plus the non-open
// bounds as [attr, lo, hi] triples (the internal/workload persistence
// shape — open [0,1] predicates are implicit).
type traceQuery struct {
	Tables []int        `json:"tables"`
	Bounds [][3]float64 `json:"bounds,omitempty"`
}

// traceArrival is one arrival: microsecond offset, client index, SLO
// class and query index. The class is derivable from the client roster
// but recorded explicitly so the trace is self-describing line by line.
type traceArrival struct {
	US    int64  `json:"us"`
	C     int    `json:"c"`
	Class string `json:"slo"`
	Q     int    `json:"q"`
}

// WriteTrace records the schedule at path (atomically: tmp, fsync,
// rename). m is the dataset meta the queries were generated against.
func WriteTrace(path string, s *Schedule, m *query.Meta) (err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	w := bufio.NewWriterSize(f, 1<<16)
	enc := json.NewEncoder(w)

	hdr := traceHeader{
		Schema: TraceSchema, Kind: traceKind,
		Tables: m.NumTables(), Attrs: m.NumAttrs(),
		Spec: s.Spec, Clients: s.Clients,
		Queries: len(s.Queries), Arrivals: len(s.Arrivals),
	}
	if err = enc.Encode(hdr); err != nil {
		return err
	}
	for _, q := range s.Queries {
		var tq traceQuery
		for t, in := range q.Tables {
			if in {
				tq.Tables = append(tq.Tables, t)
			}
		}
		for a, b := range q.Bounds {
			if b[0] > 0 || b[1] < 1 {
				tq.Bounds = append(tq.Bounds, [3]float64{float64(a), b[0], b[1]})
			}
		}
		if err = enc.Encode(tq); err != nil {
			return err
		}
	}
	for _, a := range s.Arrivals {
		ta := traceArrival{
			US: a.T.Microseconds(), C: a.Client,
			Class: s.Clients[a.Client].Class, Q: a.Query,
		}
		if err = enc.Encode(ta); err != nil {
			return err
		}
	}
	if err = w.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Directory fsync so the rename itself survives a crash (same
	// durability contract as internal/dataset chunks).
	if d, derr := os.Open(filepath.Dir(path)); derr == nil {
		d.Sync() //nolint:errcheck // best-effort; rename already landed
		d.Close()
	}
	return nil
}

// ReadTrace loads a trace recorded by WriteTrace, validating it against
// the replaying dataset's meta. The returned Schedule replays the
// recorded stream bit-exactly: same arrival offsets, client identities,
// SLO classes and query keys.
func ReadTrace(path string, m *query.Meta) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	if !sc.Scan() {
		return nil, fmt.Errorf("workloadgen: %s: empty trace", path)
	}
	var hdr traceHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("workloadgen: %s: header: %w", path, err)
	}
	if hdr.Kind != traceKind {
		return nil, fmt.Errorf("workloadgen: %s is not a workload trace (kind %q)", path, hdr.Kind)
	}
	if hdr.Schema != TraceSchema {
		return nil, fmt.Errorf("workloadgen: %s has trace schema %d, this build reads %d", path, hdr.Schema, TraceSchema)
	}
	if hdr.Tables != m.NumTables() || hdr.Attrs != m.NumAttrs() {
		return nil, fmt.Errorf("workloadgen: %s was recorded against a %d-table/%d-attr schema; replay dataset has %d/%d",
			path, hdr.Tables, hdr.Attrs, m.NumTables(), m.NumAttrs())
	}
	spec, err := hdr.Spec.Validate()
	if err != nil {
		return nil, fmt.Errorf("workloadgen: %s: embedded spec: %w", path, err)
	}
	s := &Schedule{Spec: spec, Clients: hdr.Clients}
	if len(s.Clients) == 0 {
		return nil, fmt.Errorf("workloadgen: %s: no clients in header", path)
	}

	for i := 0; i < hdr.Queries; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("workloadgen: %s: truncated at query %d/%d", path, i, hdr.Queries)
		}
		var tq traceQuery
		if err := json.Unmarshal(sc.Bytes(), &tq); err != nil {
			return nil, fmt.Errorf("workloadgen: %s: query %d: %w", path, i, err)
		}
		q := query.New(m)
		for _, t := range tq.Tables {
			if t < 0 || t >= m.NumTables() {
				return nil, fmt.Errorf("workloadgen: %s: query %d references table %d of %d", path, i, t, m.NumTables())
			}
			q.Tables[t] = true
		}
		for _, b := range tq.Bounds {
			a := int(b[0])
			if a < 0 || a >= m.NumAttrs() {
				return nil, fmt.Errorf("workloadgen: %s: query %d references attribute %d of %d", path, i, a, m.NumAttrs())
			}
			q.Bounds[a] = [2]float64{b[1], b[2]}
		}
		q.Normalize(m)
		s.Queries = append(s.Queries, q)
	}

	var prev int64 = -1
	for i := 0; i < hdr.Arrivals; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("workloadgen: %s: truncated at arrival %d/%d", path, i, hdr.Arrivals)
		}
		var ta traceArrival
		if err := json.Unmarshal(sc.Bytes(), &ta); err != nil {
			return nil, fmt.Errorf("workloadgen: %s: arrival %d: %w", path, i, err)
		}
		if ta.C < 0 || ta.C >= len(s.Clients) {
			return nil, fmt.Errorf("workloadgen: %s: arrival %d references client %d of %d", path, i, ta.C, len(s.Clients))
		}
		if ta.Q < 0 || ta.Q >= len(s.Queries) {
			return nil, fmt.Errorf("workloadgen: %s: arrival %d references query %d of %d", path, i, ta.Q, len(s.Queries))
		}
		if ta.US < prev {
			return nil, fmt.Errorf("workloadgen: %s: arrival %d goes back in time (%dus after %dus)", path, i, ta.US, prev)
		}
		prev = ta.US
		s.Arrivals = append(s.Arrivals, Arrival{
			T: time.Duration(ta.US) * time.Microsecond, Client: ta.C, Query: ta.Q,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workloadgen: %s: %w", path, err)
	}
	return s, nil
}
