package workloadgen

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"pace/internal/query"
)

// testMeta is a 2-table / 3-attr schema shared by all tests.
func testMeta() *query.Meta {
	return &query.Meta{
		TableNames: []string{"t0", "t1"},
		AttrNames:  []string{"t0.a", "t0.b", "t1.a"},
		AttrOffset: []int{0, 2, 3},
	}
}

// testPool builds a deterministic pool of n queries with varied shapes:
// alternating single-table and join queries with narrow and wide
// predicates, so shape fitting has distinct buckets to latch onto.
func testPool(n int) []*query.Query {
	m := testMeta()
	pool := make([]*query.Query, n)
	for i := range pool {
		q := query.New(m)
		q.Tables[0] = true
		if i%2 == 1 {
			q.Tables[1] = true
			q.Bounds[2] = [2]float64{0.1, 0.2 + 0.01*float64(i%10)}
		}
		q.Bounds[0] = [2]float64{0, 0.3 + 0.05*float64(i%5)}
		pool[i] = q.Normalize(m)
	}
	return pool
}

func burstySpec() Spec {
	return Spec{
		Name: "test-bursty",
		Seed: 42,
		Clients: ClientSpec{
			N: 2, MeanQPS: 400, RateDist: "zipf",
		},
		Arrival: ArrivalSpec{
			Process: "gamma", Shape: 0.5,
			OnOff: &OnOffSpec{OnSec: 0.5, OffSec: 1.0},
		},
		Classes: []ClassSpec{
			{Name: "gold", Weight: 0.7},
			{Name: "bronze", Weight: 0.3},
		},
	}
}

// TestGenerateDeterministicAcrossWorkers: the acceptance criterion of
// the workload engine — a fixed (spec, pool) plans a bit-identical
// schedule on every run and at every worker count: same arrival times,
// same client assignment, same query keys.
func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	pool := testPool(20)
	ref, err := Generate(burstySpec(), pool, nil, 5*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Arrivals) == 0 {
		t.Fatal("reference schedule planned no arrivals")
	}
	for _, workers := range []int{0, 1, 2, 8} {
		got, err := Generate(burstySpec(), pool, nil, 5*time.Second, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got.Clients, ref.Clients) {
			t.Fatalf("workers=%d: client roster diverged", workers)
		}
		if !reflect.DeepEqual(got.Arrivals, ref.Arrivals) {
			t.Fatalf("workers=%d: arrival schedule diverged (%d vs %d arrivals)",
				workers, len(got.Arrivals), len(ref.Arrivals))
		}
		for i := range got.Queries {
			if got.Queries[i].Key() != ref.Queries[i].Key() {
				t.Fatalf("workers=%d: query %d key diverged", workers, i)
			}
		}
	}
}

// TestGenerateOrdersArrivals: the merged stream is non-decreasing in
// time and every index is in range — the invariants RunSchedule and
// WriteTrace rely on.
func TestGenerateOrdersArrivals(t *testing.T) {
	s, err := Generate(burstySpec(), testPool(10), nil, 3*time.Second, 4)
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Duration = -1
	for i, a := range s.Arrivals {
		if a.T < prev {
			t.Fatalf("arrival %d at %v precedes %v", i, a.T, prev)
		}
		prev = a.T
		if a.Client < 0 || a.Client >= len(s.Clients) {
			t.Fatalf("arrival %d references client %d of %d", i, a.Client, len(s.Clients))
		}
		if a.Query < 0 || a.Query >= len(s.Queries) {
			t.Fatalf("arrival %d references query %d of %d", i, a.Query, len(s.Queries))
		}
	}
}

// TestGenerateMeanRate: every arrival process — including on/off
// gating, whose whole point is equal mean with different peaks — must
// offer the spec's mean rate over a long horizon.
func TestGenerateMeanRate(t *testing.T) {
	for _, tc := range []struct {
		name    string
		arrival ArrivalSpec
		tol     float64
	}{
		{"poisson", ArrivalSpec{Process: "poisson"}, 0.10},
		{"gamma", ArrivalSpec{Process: "gamma", Shape: 0.5}, 0.10},
		{"weibull", ArrivalSpec{Process: "weibull", Shape: 0.5}, 0.10},
		// On/off pushes all variance into window placement; a 60s
		// horizon sees ~40 cycles, so allow a looser band.
		{"onoff", ArrivalSpec{Process: "gamma", Shape: 0.5,
			OnOff: &OnOffSpec{OnSec: 0.5, OffSec: 1.0}}, 0.25},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := Spec{
				Seed:    7,
				Clients: ClientSpec{N: 4, MeanQPS: 300, RateDist: "uniform"},
				Arrival: tc.arrival,
			}
			horizon := 60 * time.Second
			s, err := Generate(spec, testPool(5), nil, horizon, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := spec.Clients.MeanQPS * horizon.Seconds()
			got := float64(len(s.Arrivals))
			if math.Abs(got-want)/want > tc.tol {
				t.Errorf("%s offered %v arrivals over %v, want %v ±%v%%",
					tc.name, got, horizon, want, tc.tol*100)
			}
		})
	}
}

// TestGenerateRejectsRunawaySchedules: a typo'd rate fails fast instead
// of planning millions of arrivals.
func TestGenerateRejectsRunawaySchedules(t *testing.T) {
	spec := Spec{Clients: ClientSpec{MeanQPS: 1e7}}
	if _, err := Generate(spec, testPool(2), nil, time.Hour, 0); err == nil {
		t.Error("1e7 qps over an hour generated instead of failing")
	}
	if _, err := Generate(Spec{}, nil, nil, time.Second, 0); err == nil {
		t.Error("empty pool generated")
	}
	if _, err := Generate(Spec{}, testPool(1), nil, 0, 0); err == nil {
		t.Error("zero horizon generated")
	}
}

// TestPopulation: zipf rates are rank-ordered and every dist normalizes
// to the aggregate mean; the class mix follows the weights.
func TestPopulation(t *testing.T) {
	for _, dist := range []string{"zipf", "lognormal", "uniform"} {
		spec, err := Spec{
			Seed:    3,
			Clients: ClientSpec{N: 50, MeanQPS: 500, RateDist: dist},
			Classes: []ClassSpec{{Name: "gold", Weight: 0.7}, {Name: "bronze", Weight: 0.3}},
		}.Validate()
		if err != nil {
			t.Fatal(err)
		}
		cs := population(spec)
		var sum float64
		gold := 0
		for i, c := range cs {
			sum += c.Rate
			if c.ID != fmt.Sprintf("c%03d", i) {
				t.Errorf("%s: client %d has ID %q", dist, i, c.ID)
			}
			switch c.Class {
			case "gold":
				gold++
			case "bronze":
			default:
				t.Errorf("%s: client %d in unknown class %q", dist, i, c.Class)
			}
		}
		if math.Abs(sum-500) > 1e-6 {
			t.Errorf("%s: rates sum to %v, want 500", dist, sum)
		}
		// 50 draws at p=0.7: the binomial 5σ band is ~±16.
		if gold < 19 || gold > 50 {
			t.Errorf("%s: %d/50 clients gold, want ~35", dist, gold)
		}
	}
	// Zipf is rank-frequency: rates strictly decreasing.
	spec, _ := Spec{Clients: ClientSpec{N: 10, MeanQPS: 100, RateDist: "zipf"}}.Validate()
	cs := population(spec)
	for i := 1; i < len(cs); i++ {
		if cs[i].Rate >= cs[i-1].Rate {
			t.Errorf("zipf rate %d (%v) >= rate %d (%v)", i, cs[i].Rate, i-1, cs[i-1].Rate)
		}
	}
}

// TestSpecValidate: malformed specs are refused with the field named.
func TestSpecValidate(t *testing.T) {
	for name, s := range map[string]Spec{
		"bad version":     {V: 99},
		"bad rate dist":   {Clients: ClientSpec{RateDist: "pareto"}},
		"bad process":     {Arrival: ArrivalSpec{Process: "cauchy"}},
		"negative shape":  {Arrival: ArrivalSpec{Shape: -1}},
		"negative weight": {Classes: []ClassSpec{{Name: "a", Weight: -1}}},
		"unnamed class":   {Classes: []ClassSpec{{Name: "", Weight: 1}}},
		"zero weights":    {Classes: []ClassSpec{{Name: "a", Weight: 0}}},
		"negative on":     {Arrival: ArrivalSpec{OnOff: &OnOffSpec{OnSec: -1, OffSec: 1}}},
	} {
		if _, err := s.Validate(); err == nil {
			t.Errorf("%s validated", name)
		}
	}
	// The zero spec canonicalizes to the documented defaults.
	s, err := Spec{}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if s.V != SpecVersion || s.Seed != 1 || s.Clients.N != 8 ||
		s.Clients.RateDist != "zipf" || s.Arrival.Process != "poisson" ||
		len(s.Classes) != 1 || s.Classes[0].Name != "default" {
		t.Errorf("zero spec canonicalized to %+v", s)
	}
}

// TestBuiltinSpecs: both named profiles validate and differ only in
// burstiness, not mean rate.
func TestBuiltinSpecs(t *testing.T) {
	u, err := Builtin("uniform")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Builtin("bursty")
	if err != nil {
		t.Fatal(err)
	}
	if u.Clients.MeanQPS != b.Clients.MeanQPS {
		t.Errorf("uniform offers %v qps, bursty %v — the comparison needs equal means",
			u.Clients.MeanQPS, b.Clients.MeanQPS)
	}
	if b.Arrival.OnOff == nil {
		t.Error("bursty profile has no on/off gating")
	}
	if _, err := Builtin("nope"); err == nil {
		t.Error("unknown builtin accepted")
	}
}

// TestLoadSpec round-trips a spec file.
func TestLoadSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(`{"name":"x","clients":{"n":3,"mean_qps":50}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "x" || s.Clients.N != 3 || s.Clients.MeanQPS != 50 || s.Arrival.Process != "poisson" {
		t.Errorf("loaded %+v", s)
	}
	if err := os.WriteFile(path, []byte(`{"clients":{"rate_dist":"pareto"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(path); err == nil {
		t.Error("invalid spec file loaded")
	}
}

// TestShapeSampler: a fit concentrated on one shape bucket draws only
// pool queries in that bucket; with zero overlap it degrades to uniform
// over the whole pool.
func TestShapeSampler(t *testing.T) {
	m := testMeta()
	pool := testPool(20) // even indexes: 1-table; odd: 2-table joins
	// Fit from a workload that is 100% single-table, one predicate.
	var fitSrc []*query.Query
	for i := 0; i < 8; i++ {
		q := query.New(m)
		q.Tables[0] = true
		q.Bounds[0] = [2]float64{0, 0.4}
		fitSrc = append(fitSrc, q.Normalize(m))
	}
	s := NewSampler(FitShapes(fitSrc), pool)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		idx := s.Draw(rng)
		if idx%2 != 0 {
			t.Fatalf("draw %d picked pool index %d, a join query outside the fitted shape", i, idx)
		}
	}

	// No overlap: fit is all 2-predicate joins over a pool of open
	// queries → uniform over the whole pool.
	open := make([]*query.Query, 5)
	for i := range open {
		open[i] = query.New(m)
	}
	u := NewSampler(FitShapes(fitSrc), open)
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		seen[u.Draw(rng)] = true
	}
	if len(seen) != len(open) {
		t.Errorf("uniform fallback covered %d/%d pool indexes", len(seen), len(open))
	}
}

// TestTraceRoundTrip: record → read → re-record is byte-identical, and
// the replayed schedule preserves per-client arrival counts, classes
// and query keys exactly. Generation at different worker counts feeds
// the same trace bytes — the satellite determinism requirement.
func TestTraceRoundTrip(t *testing.T) {
	m := testMeta()
	pool := testPool(12)
	dir := t.TempDir()

	write := func(name string, workers int) ([]byte, *Schedule) {
		s, err := Generate(burstySpec(), pool, nil, 2*time.Second, workers)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := WriteTrace(path, s, m); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw, s
	}

	raw1, orig := write("t1.jsonl", 1)
	raw4, _ := write("t4.jsonl", 4)
	if !bytes.Equal(raw1, raw4) {
		t.Fatal("traces from workers=1 and workers=4 differ byte-for-byte")
	}

	replay, err := ReadTrace(filepath.Join(dir, "t1.jsonl"), m)
	if err != nil {
		t.Fatal(err)
	}
	// Re-recording the replayed schedule reproduces the file exactly
	// (µs truncation is idempotent, encoding is struct-only).
	rePath := filepath.Join(dir, "re.jsonl")
	if err := WriteTrace(rePath, replay, m); err != nil {
		t.Fatal(err)
	}
	raw2, err := os.ReadFile(rePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("record → replay → re-record changed the trace bytes")
	}

	if len(replay.Arrivals) != len(orig.Arrivals) {
		t.Fatalf("replay has %d arrivals, recorded %d", len(replay.Arrivals), len(orig.Arrivals))
	}
	perClient := make(map[int]int)
	for i, a := range replay.Arrivals {
		perClient[a.Client]++
		o := orig.Arrivals[i]
		if a.Client != o.Client || a.Query != o.Query {
			t.Fatalf("arrival %d replayed as client %d query %d, recorded %d/%d",
				i, a.Client, a.Query, o.Client, o.Query)
		}
		if a.T != o.T.Truncate(time.Microsecond) {
			t.Fatalf("arrival %d replayed at %v, recorded %v", i, a.T, o.T)
		}
	}
	if len(perClient) < 2 {
		t.Fatalf("trace exercises %d clients, want ≥ 2 for the determinism claim", len(perClient))
	}
	for i := range replay.Queries {
		if replay.Queries[i].Key() != orig.Queries[i].Key() {
			t.Fatalf("query %d key changed through the trace", i)
		}
	}
	for i, c := range replay.Clients {
		if c != orig.Clients[i] {
			t.Fatalf("client %d replayed as %+v, recorded %+v", i, c, orig.Clients[i])
		}
	}
}

// TestTraceRejectsMismatches: wrong kind, wrong schema version and a
// different dataset shape all refuse loudly.
func TestTraceRejectsMismatches(t *testing.T) {
	m := testMeta()
	s, err := Generate(burstySpec(), testPool(4), nil, time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.jsonl")
	if err := WriteTrace(path, s, m); err != nil {
		t.Fatal(err)
	}

	// Replaying against a different schema must fail.
	other := &query.Meta{
		TableNames: []string{"solo"},
		AttrNames:  []string{"solo.a"},
		AttrOffset: []int{0, 1},
	}
	if _, err := ReadTrace(path, other); err == nil {
		t.Error("trace replayed against a mismatched dataset meta")
	}

	// A tampered schema number must fail.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(raw, []byte(`{"schema":1`), []byte(`{"schema":99`), 1)
	badPath := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(badPath, m); err == nil {
		t.Error("future-schema trace accepted")
	}

	// A non-trace JSONL file must fail on kind.
	if err := os.WriteFile(badPath, []byte(`{"schema":1,"kind":"something-else"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(badPath, m); err == nil {
		t.Error("non-trace file accepted")
	}

	// A truncated trace must fail rather than replay a partial stream.
	trunc := raw[:len(raw)-len(raw)/4]
	if err := os.WriteFile(badPath, trunc, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(badPath, m); err == nil {
		t.Error("truncated trace accepted")
	}
}
