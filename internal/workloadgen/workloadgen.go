// Package workloadgen generates realistic request streams: who calls
// (a heterogeneous, skew-rated client population), when they call
// (bursty renewal arrival processes, optionally gated by on/off burst
// periods), and what they ask (queries drawn to match an empirical
// shape distribution instead of round-robin replay).
//
// It is deliberately decoupled from the firing loop in internal/loadgen:
// this package only *plans* a stream — a Schedule of timestamped
// arrivals, each tagged with a client identity, an SLO class and a
// query — and never performs I/O against a target. Planning is pure and
// seeded: a fixed Spec yields a bit-identical Schedule on every run and
// at every worker count, because each client draws from its own
// splitmix64-split RNG stream (engine.SplitRNG) and the merge order is
// a deterministic function of the arrivals themselves. That purity is
// what makes traces trustworthy: a Schedule recorded to a JSONL trace
// replays to the exact same stream, so "the same load" can be offered
// to an in-process model, a single paced, and a routed fleet.
//
// The modeling follows the ServeGen decomposition (see SNIPPETS.md
// snippet 2) that the paper's robustness findings motivate: learned
// estimators are stress-tested by *shifting, skewed* workloads, so the
// crowd a campaign hides in must have skewed per-client rates and
// bursty interarrivals, not a uniform open loop.
package workloadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// SpecVersion identifies the spec schema carried inside traces; Load
// refuses a spec from a different major version rather than misreading
// its knobs.
const SpecVersion = 1

// Spec declares one workload: the client population, the arrival
// process each client runs, and the SLO-class mix. The JSON form is the
// -spec file of cmd/loadgen and the workload field of a bench cell.
type Spec struct {
	// V is the spec schema version (SpecVersion; 0 means current on
	// input and is canonicalized by Validate).
	V int `json:"v,omitempty"`
	// Name labels the spec in traces and reports.
	Name string `json:"name,omitempty"`
	// Seed drives every draw the spec causes (default 1). The same
	// (Spec, query pool) pair is bit-identical at any worker count.
	Seed int64 `json:"seed,omitempty"`

	Clients ClientSpec  `json:"clients"`
	Arrival ArrivalSpec `json:"arrival"`
	// Classes is the SLO-class mix; clients are assigned a class by
	// weighted draw. Empty means one class "default" with weight 1.
	Classes []ClassSpec `json:"classes,omitempty"`
}

// ClientSpec shapes the client population.
type ClientSpec struct {
	// N is the population size (default 8).
	N int `json:"n,omitempty"`
	// MeanQPS is the population's aggregate mean offered rate,
	// distributed across clients by RateDist (default 100).
	MeanQPS float64 `json:"mean_qps,omitempty"`
	// RateDist skews per-client rates: "zipf" (rank-frequency, the
	// heavy-headed default), "lognormal", or "uniform".
	RateDist string `json:"rate_dist,omitempty"`
	// ZipfS is the zipf exponent (default 1.1): client k gets weight
	// 1/k^s. Larger = more of the traffic concentrated on few clients.
	ZipfS float64 `json:"zipf_s,omitempty"`
	// Sigma is the lognormal shape (default 1.0): per-client weights
	// exp(sigma·z) with z standard normal.
	Sigma float64 `json:"sigma,omitempty"`
}

// ArrivalSpec shapes each client's interarrival process.
type ArrivalSpec struct {
	// Process: "poisson" (exponential interarrivals, the default),
	// "gamma" or "weibull".
	Process string `json:"process,omitempty"`
	// Shape is the gamma/weibull shape parameter k (default 0.5 for
	// both — k < 1 makes interarrivals burstier than Poisson; ignored
	// by "poisson"). Scale is always derived so the mean interarrival
	// matches the client's rate.
	Shape float64 `json:"shape,omitempty"`
	// OnOff, when set, gates the process through alternating on/off
	// periods: a client fires only during "on" windows, at a rate
	// scaled up so its mean offered rate is unchanged. This is the
	// coordinated-burst knob — equal mean rate, very different peaks.
	OnOff *OnOffSpec `json:"on_off,omitempty"`
}

// OnOffSpec shapes burst gating. Period lengths are exponential with
// the given means, drawn per client from its private stream.
type OnOffSpec struct {
	// OnSec and OffSec are the mean on/off period durations in seconds
	// (defaults 1 and 3).
	OnSec  float64 `json:"on_sec,omitempty"`
	OffSec float64 `json:"off_sec,omitempty"`
}

// ClassSpec is one SLO class and its share of the client population.
type ClassSpec struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
}

// withDefaults fills zero fields with the package defaults.
func (s Spec) withDefaults() Spec {
	if s.V == 0 {
		s.V = SpecVersion
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Clients.N == 0 {
		s.Clients.N = 8
	}
	if s.Clients.MeanQPS == 0 {
		s.Clients.MeanQPS = 100
	}
	if s.Clients.RateDist == "" {
		s.Clients.RateDist = "zipf"
	}
	if s.Clients.ZipfS == 0 {
		s.Clients.ZipfS = 1.1
	}
	if s.Clients.Sigma == 0 {
		s.Clients.Sigma = 1.0
	}
	if s.Arrival.Process == "" {
		s.Arrival.Process = "poisson"
	}
	if s.Arrival.Shape == 0 {
		s.Arrival.Shape = 0.5
	}
	if s.Arrival.OnOff != nil {
		oo := *s.Arrival.OnOff
		if oo.OnSec == 0 {
			oo.OnSec = 1
		}
		if oo.OffSec == 0 {
			oo.OffSec = 3
		}
		s.Arrival.OnOff = &oo
	}
	if len(s.Classes) == 0 {
		s.Classes = []ClassSpec{{Name: "default", Weight: 1}}
	}
	return s
}

// Validate canonicalizes the spec (filling defaults) and checks it is
// generable. It returns the canonical form so traces always embed a
// fully-resolved spec.
func (s Spec) Validate() (Spec, error) {
	s = s.withDefaults()
	if s.V != SpecVersion {
		return s, fmt.Errorf("workloadgen: spec version %d, this build speaks %d", s.V, SpecVersion)
	}
	if s.Clients.N < 1 {
		return s, fmt.Errorf("workloadgen: client population %d < 1", s.Clients.N)
	}
	if s.Clients.MeanQPS <= 0 {
		return s, fmt.Errorf("workloadgen: mean rate %v <= 0", s.Clients.MeanQPS)
	}
	switch s.Clients.RateDist {
	case "zipf", "lognormal", "uniform":
	default:
		return s, fmt.Errorf("workloadgen: unknown rate_dist %q (want zipf, lognormal or uniform)", s.Clients.RateDist)
	}
	switch s.Arrival.Process {
	case "poisson", "gamma", "weibull":
	default:
		return s, fmt.Errorf("workloadgen: unknown arrival process %q (want poisson, gamma or weibull)", s.Arrival.Process)
	}
	if s.Arrival.Shape <= 0 {
		return s, fmt.Errorf("workloadgen: arrival shape %v <= 0", s.Arrival.Shape)
	}
	if oo := s.Arrival.OnOff; oo != nil && (oo.OnSec <= 0 || oo.OffSec < 0) {
		return s, fmt.Errorf("workloadgen: on/off periods on=%vs off=%vs invalid", oo.OnSec, oo.OffSec)
	}
	var wsum float64
	for _, c := range s.Classes {
		if c.Name == "" || strings.ContainsAny(c.Name, " \t\n\"") {
			return s, fmt.Errorf("workloadgen: class name %q invalid", c.Name)
		}
		if c.Weight < 0 {
			return s, fmt.Errorf("workloadgen: class %s has negative weight", c.Name)
		}
		wsum += c.Weight
	}
	if wsum <= 0 {
		return s, fmt.Errorf("workloadgen: class weights sum to %v", wsum)
	}
	return s, nil
}

// LoadSpec reads and validates a spec from a JSON file.
func LoadSpec(path string) (Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	var s Spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return Spec{}, fmt.Errorf("workloadgen: %s: %w", path, err)
	}
	s, err = s.Validate()
	if err != nil {
		return Spec{}, fmt.Errorf("workloadgen: %s: %w", path, err)
	}
	return s, nil
}

// Builtin returns a named built-in spec, the profiles bench cells and
// quickstarts reference without a spec file:
//
//   - "uniform": one client, Poisson arrivals — the open loop the old
//     loadgen offered, expressed in the new model.
//   - "bursty": 16 zipf-rated clients, gamma(0.5) interarrivals gated
//     by 1s-on/3s-off burst windows, a 70/30 gold/bronze class mix —
//     equal mean rate to "uniform", very different peaks.
func Builtin(name string) (Spec, error) {
	switch name {
	case "uniform":
		return Spec{
			Name:    "uniform",
			Clients: ClientSpec{N: 1, RateDist: "uniform"},
			Arrival: ArrivalSpec{Process: "poisson"},
		}.Validate()
	case "bursty":
		return Spec{
			Name:    "bursty",
			Clients: ClientSpec{N: 16, RateDist: "zipf"},
			Arrival: ArrivalSpec{
				Process: "gamma", Shape: 0.5,
				OnOff: &OnOffSpec{OnSec: 1, OffSec: 3},
			},
			Classes: []ClassSpec{
				{Name: "gold", Weight: 0.7},
				{Name: "bronze", Weight: 0.3},
			},
		}.Validate()
	default:
		return Spec{}, fmt.Errorf("workloadgen: unknown built-in spec %q (have uniform, bursty)", name)
	}
}
