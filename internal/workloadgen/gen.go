package workloadgen

import (
	"fmt"
	"sort"
	"time"

	"pace/internal/engine"
	"pace/internal/query"
)

// Arrival is one planned request: when it fires (offset from schedule
// start), who fires it, and what it asks. Client and Query index into
// the owning Schedule's rosters — the trace stays compact and the
// identity of every draw is explicit.
type Arrival struct {
	T      time.Duration
	Client int
	Query  int
}

// Schedule is a fully-planned request stream: the canonical spec that
// produced it, the client roster, the query pool arrivals reference,
// and the time-ordered arrivals themselves. A Schedule is immutable
// once generated; replaying it (loadgen.RunSchedule) or recording it
// (WriteTrace) never mutates it.
type Schedule struct {
	Spec    Spec
	Clients []Client
	Queries []*query.Query
	Arrivals []Arrival
}

// Class returns the SLO class of an arrival.
func (s *Schedule) Class(a Arrival) string { return s.Clients[a.Client].Class }

// maxArrivals caps a schedule so a typo'd rate or horizon fails fast
// instead of planning an unbounded stream.
const maxArrivals = 2_000_000

// Generate plans the spec's request stream over the horizon against the
// replay pool. shapes may be nil (uniform draws over the pool) or a
// distribution fitted from a source workload (FitShapes). workers
// bounds the per-client fan-out (0 serial, negative all cores); the
// result is bit-identical at any setting because client k's arrivals
// and query draws come only from splitmix64 streams (seed, 2k) and
// (seed, 2k+1), and the merged order is a pure function of the
// arrivals: sort by (T, client), ties impossible within one client
// (interarrivals are > 0 almost surely, and equal-T cross-client
// arrivals order by client index).
func Generate(spec Spec, pool []*query.Query, shapes *ShapeDist, horizon time.Duration, workers int) (*Schedule, error) {
	spec, err := spec.Validate()
	if err != nil {
		return nil, err
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("workloadgen: empty query pool")
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("workloadgen: horizon %v <= 0", horizon)
	}
	if expect := spec.Clients.MeanQPS * horizon.Seconds(); expect > maxArrivals {
		return nil, fmt.Errorf("workloadgen: %v at %.0f qps plans ~%.0f arrivals (cap %d)",
			horizon, spec.Clients.MeanQPS, expect, maxArrivals)
	}

	sched := &Schedule{Spec: spec, Clients: population(spec)}
	sched.Queries = append([]*query.Query(nil), pool...)
	sampler := NewSampler(shapes, sched.Queries)

	perClient := make([][]Arrival, len(sched.Clients))
	engine.PoolFor(workers).ForEach(len(sched.Clients), func(i int) {
		perClient[i] = clientArrivals(spec, sched.Clients[i], i, sampler, horizon)
	})

	total := 0
	for _, as := range perClient {
		total += len(as)
	}
	sched.Arrivals = make([]Arrival, 0, total)
	for _, as := range perClient {
		sched.Arrivals = append(sched.Arrivals, as...)
	}
	sort.SliceStable(sched.Arrivals, func(i, j int) bool {
		a, b := sched.Arrivals[i], sched.Arrivals[j]
		if a.T != b.T {
			return a.T < b.T
		}
		return a.Client < b.Client
	})
	return sched, nil
}

// clientArrivals plans one client's stream from its two private RNG
// streams: interarrivals (and on/off windows) from (seed, 2i), query
// draws from (seed, 2i+1). Zero-rate clients fire nothing.
func clientArrivals(spec Spec, c Client, i int, sampler *Sampler, horizon time.Duration) []Arrival {
	if c.Rate <= 0 {
		return nil
	}
	arrRng := engine.SplitRNG(spec.Seed, int64(2*i))
	qRng := engine.SplitRNG(spec.Seed, int64(2*i+1))
	sample := meanOneSampler(spec.Arrival)

	// Burst gating: the renewal process runs in "active" time at a
	// boosted rate; the clock stretches active time over on/off wall
	// windows so the mean offered rate stays c.Rate.
	rate := c.Rate * spec.Arrival.OnOff.boost()
	var clock *onOffClock
	if spec.Arrival.OnOff != nil {
		clock = newOnOffClock(arrRng, spec.Arrival.OnOff)
	}

	var out []Arrival
	var wall float64 // wall-time cursor without gating, seconds
	for {
		d := sample(arrRng) / rate
		if clock != nil {
			wall = clock.advance(d)
		} else {
			wall += d
		}
		t := time.Duration(wall * float64(time.Second))
		if t >= horizon || len(out) >= maxArrivals {
			return out
		}
		out = append(out, Arrival{T: t, Client: i, Query: sampler.Draw(qRng)})
	}
}
