// Package cli holds the small flag helpers shared by the cmd/ binaries,
// so every entry point spells reproducibility and parallelism the same
// way: one -seed flag with one default, one -workers flag with one
// meaning. A campaign started from any binary with the same -seed (and
// any -workers) is bit-identical.
package cli

import "flag"

// DefaultSeed is the seed every binary uses unless -seed overrides it.
const DefaultSeed = 1

// Seed registers the unified -seed flag.
func Seed() *int64 {
	return flag.Int64("seed", DefaultSeed,
		"random seed (a fixed seed reproduces the run bit-for-bit at any -workers)")
}

// AuthToken registers the unified -auth-token flag: the bearer token a
// client presents to a paced host running with -auth-tokens. Empty sends
// no Authorization header.
func AuthToken() *string {
	return flag.String("auth-token", "",
		"bearer token for a paced host with auth enabled (empty = no Authorization header)")
}

// Workers registers the unified -workers flag. The value maps directly
// onto the worker-pool knobs (core.Config.Workers,
// experiments.Config.Workers): 0 runs serially, negative uses all cores.
// Results are worker-count independent except under active fault
// injection, whose schedule follows call arrival order.
func Workers() *int {
	return flag.Int("workers", -1,
		"worker pool size: 0 = serial, -1 = all cores (fault-free results are identical either way)")
}
