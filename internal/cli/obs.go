package cli

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pace/internal/obs"
)

// ObsFlags bundles the unified observability flags shared by the cmd/
// binaries: every entry point spells telemetry the same way. Register
// the flags with Obs() before flag.Parse, materialize them with Setup
// after.
type ObsFlags struct {
	LogLevel    *string
	LogFormat   *string
	Trace       *string
	TraceActor  *string
	PprofCPU    *string
	PprofMem    *string
	MetricsAddr *string
}

// Obs registers the observability flags: structured logging
// (-log-level/-log-format), span tracing (-trace), profiling
// (-pprof-cpu/-pprof-mem) and the Prometheus + pprof HTTP endpoint
// (-metrics-addr). Everything defaults off and costs the pipeline
// nothing until enabled.
func Obs() *ObsFlags {
	return &ObsFlags{
		LogLevel:    flag.String("log-level", "", "enable structured logging at this level: debug, info, warn or error (default off)"),
		LogFormat:   flag.String("log-format", "text", "structured log format: text or json"),
		Trace:       flag.String("trace", "", "write a JSONL span trace of the run to this file"),
		TraceActor:  flag.String("trace-actor", "", "process name stamped on every span (default: the binary's name); pacetrace groups merged spans by it"),
		PprofCPU:    flag.String("pprof-cpu", "", "write a CPU profile to this file"),
		PprofMem:    flag.String("pprof-mem", "", "write a heap profile to this file on exit"),
		MetricsAddr: flag.String("metrics-addr", "", "serve Prometheus metrics and net/http/pprof on this address (e.g. :9090, or 127.0.0.1:0 for an ephemeral port)"),
	}
}

// Setup materializes the parsed flags: it builds the Telemetry the
// pipeline carries (nil when no telemetry flag is set — the zero-cost
// path) and starts CPU profiling and the metrics endpoint when asked.
// The returned shutdown func stops profiling, writes the heap profile,
// flushes the trace and closes the endpoint; call it exactly once,
// after the run (not via defer past an os.Exit).
func (f *ObsFlags) Setup() (*obs.Telemetry, func() error, error) {
	var closers []func() error
	shutdown := func() error {
		var firstErr error
		for i := len(closers) - 1; i >= 0; i-- {
			if err := closers[i](); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}

	var tel *obs.Telemetry
	if *f.LogLevel != "" || *f.Trace != "" || *f.MetricsAddr != "" {
		// The registry rides along whenever any telemetry channel is on:
		// it is cheap, and both the trace and the endpoint are more
		// useful with counters behind them.
		tel = &obs.Telemetry{Reg: obs.NewRegistry()}
	}
	if *f.LogLevel != "" {
		lg, err := obs.NewLogger(os.Stderr, *f.LogLevel, *f.LogFormat)
		if err != nil {
			return nil, shutdown, err
		}
		tel.Log = lg
	}
	if *f.Trace != "" {
		tr, err := obs.NewFileTracer(*f.Trace)
		if err != nil {
			return nil, shutdown, err
		}
		actor := *f.TraceActor
		if actor == "" {
			actor = filepath.Base(os.Args[0])
		}
		tr.SetProc(actor)
		tel.Tracer = tr
		closers = append(closers, tr.Close)
	}
	if *f.MetricsAddr != "" {
		srv, err := obs.ServeMetrics(*f.MetricsAddr, tel.Reg)
		if err != nil {
			return nil, shutdown, err
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (pprof under /debug/pprof/)\n", srv.Addr)
		closers = append(closers, srv.Close)
	}
	if *f.PprofCPU != "" {
		stop, err := obs.StartCPUProfile(*f.PprofCPU)
		if err != nil {
			return nil, shutdown, err
		}
		closers = append(closers, stop)
	}
	if *f.PprofMem != "" {
		path := *f.PprofMem
		closers = append(closers, func() error { return obs.WriteHeapProfile(path) })
	}
	return tel, shutdown, nil
}
