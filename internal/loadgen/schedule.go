package loadgen

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"pace/internal/query"
	"pace/internal/workloadgen"
)

// Schedule aliases the workloadgen plan so lane construction reads
// naturally without every caller importing both packages.
type Schedule = workloadgen.Schedule

// Fire fires one estimate under a client identity (sent as
// X-Pace-Client, so the server's per-client token buckets see the
// planned population, not one monolithic load generator).
type Fire func(ctx context.Context, client string, q *query.Query) (float64, error)

// RunSchedule fires a planned request stream open-loop: every arrival
// fires at its recorded offset from run start (or immediately once
// behind schedule), regardless of whether earlier requests returned.
// The report splits outcomes per SLO class and per client on top of
// the usual ledger. cfg.QPS and cfg.Duration are ignored — the
// schedule defines both the timing and the horizon; Timeout and
// MaxInFlight apply as in Run. ctx cancels the run early.
func RunSchedule(ctx context.Context, fire Fire, sched *Schedule, cfg Config) Report {
	cfg = cfg.withDefaults()

	var (
		col      collector
		inFlight atomic.Int64
		wg       sync.WaitGroup
	)

	start := time.Now()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
loop:
	for _, a := range sched.Arrivals {
		if wait := a.T - time.Since(start); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				timer.Stop()
				break loop
			case <-timer.C:
			}
		} else if ctx.Err() != nil {
			break loop
		}
		client := sched.Clients[a.Client]
		q := sched.Queries[a.Query]
		dropped := inFlight.Load() >= int64(cfg.MaxInFlight)
		col.arrival(dropped, client.Class, client.ID)
		if dropped {
			continue
		}
		inFlight.Add(1)
		wg.Add(1)
		go func(client workloadgen.Client, q *query.Query) {
			defer wg.Done()
			defer inFlight.Add(-1)
			rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
			defer cancel()
			t0 := time.Now()
			_, err := fire(rctx, client.ID, q)
			ms := float64(time.Since(t0).Microseconds()) / 1e3
			col.record(classify(err), ms, client.Class, client.ID)
		}(client, q)
	}
	wg.Wait()
	rep := col.finish(sched.Spec.Clients.MeanQPS, time.Since(start))
	// Stamp each client's class onto its split (the collector only sees
	// identities at record time).
	for name, cl := range rep.Clients {
		for _, c := range sched.Clients {
			if c.ID == name {
				cl.Class = c.Class
				rep.Clients[name] = cl
				break
			}
		}
	}
	return rep
}
