package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"pace/internal/ce"
	"pace/internal/query"
	"pace/internal/remote"
)

func testQueries() []*query.Query {
	m := &query.Meta{
		TableNames: []string{"a"},
		AttrNames:  []string{"a0"},
		AttrOffset: []int{0, 1},
	}
	q := query.New(m)
	q.Bounds[0] = [2]float64{0.2, 0.8}
	return []*query.Query{q}
}

// TestRunAccountsEveryOutcome drives the generator against a fake target
// that answers with a fixed outcome mix and checks the report's ledger:
// every sent request lands in exactly one bucket, and each classified
// error reaches its own tally.
func TestRunAccountsEveryOutcome(t *testing.T) {
	var n atomic.Int64
	est := func(ctx context.Context, q *query.Query) (float64, error) {
		switch n.Add(1) % 6 {
		case 0:
			return 0, fmt.Errorf("shed: %w", remote.ErrOverloaded)
		case 1:
			return 0, fmt.Errorf("bad: %w", ce.ErrInvalidQuery)
		case 2:
			return 0, errors.New("connection reset")
		case 3:
			return 0, fmt.Errorf("backend dead: %w", remote.ErrUnavailable)
		default:
			return 42, nil
		}
	}
	rep := Run(context.Background(), est, testQueries(), Config{
		QPS:      2000,
		Duration: 200 * time.Millisecond,
		Timeout:  time.Second,
	})

	if rep.Sent == 0 {
		t.Fatal("no requests sent")
	}
	completed := rep.OK + rep.Shed + rep.Invalid + rep.Unavailable + rep.Errors
	if completed != rep.Sent {
		t.Errorf("ledger leak: sent %d != ok %d + shed %d + invalid %d + unavailable %d + errors %d",
			rep.Sent, rep.OK, rep.Shed, rep.Invalid, rep.Unavailable, rep.Errors)
	}
	if rep.Offered != rep.Sent+rep.ClientDropped {
		t.Errorf("arrival leak: offered %d != sent %d + dropped %d",
			rep.Offered, rep.Sent, rep.ClientDropped)
	}
	// The outcome mix must show up in every bucket.
	for name, got := range map[string]int64{
		"ok": rep.OK, "shed": rep.Shed, "invalid": rep.Invalid,
		"unavailable": rep.Unavailable, "errors": rep.Errors,
	} {
		if got == 0 {
			t.Errorf("bucket %s empty despite mixed outcomes (report %+v)", name, rep)
		}
	}
	if rep.TargetQPS != 2000 {
		t.Errorf("TargetQPS = %v, want 2000", rep.TargetQPS)
	}
	if rep.AchievedQPS <= 0 || rep.DurationSec <= 0 {
		t.Errorf("achieved qps %v over %vs; want > 0", rep.AchievedQPS, rep.DurationSec)
	}
	if rep.LatencyMsP50 < 0 || rep.LatencyMsP99 < rep.LatencyMsP50 || rep.LatencyMsMax < rep.LatencyMsP99 {
		t.Errorf("latency percentiles not monotone: p50 %v p99 %v max %v",
			rep.LatencyMsP50, rep.LatencyMsP99, rep.LatencyMsMax)
	}
}

// TestRunCapsInFlight: a target that never answers within the run must
// trip the in-flight cap, and the capped sends count as client drops —
// the offered schedule never blocks on a slow server.
func TestRunCapsInFlight(t *testing.T) {
	est := func(ctx context.Context, q *query.Query) (float64, error) {
		<-ctx.Done() // hold the slot until the per-request timeout
		return 0, ctx.Err()
	}
	rep := Run(context.Background(), est, testQueries(), Config{
		QPS:         2000,
		Duration:    150 * time.Millisecond,
		Timeout:     500 * time.Millisecond,
		MaxInFlight: 8,
	})
	if rep.ClientDropped == 0 {
		t.Errorf("cap of 8 never tripped at 2000 QPS: %+v", rep)
	}
	if rep.OK != 0 {
		t.Errorf("%d requests served by a target that never answers", rep.OK)
	}
	if got := rep.OK + rep.Shed + rep.Invalid + rep.Unavailable + rep.Errors; got != rep.Sent {
		t.Errorf("ledger leak: sent %d, accounted %d", rep.Sent, got)
	}
	if rep.Offered != rep.Sent+rep.ClientDropped {
		t.Errorf("arrival double-booked: offered %d != sent %d + dropped %d",
			rep.Offered, rep.Sent, rep.ClientDropped)
	}
}

// TestRunHonorsCancel: cancelling the run context stops offering load
// well before the configured duration.
func TestRunHonorsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	est := func(ctx context.Context, q *query.Query) (float64, error) { return 1, nil }
	start := time.Now()
	rep := Run(ctx, est, testQueries(), Config{
		QPS:      500,
		Duration: 30 * time.Second,
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("run survived cancel for %v", elapsed)
	}
	if rep.Sent == 0 {
		t.Error("nothing sent before cancel")
	}
}

// TestRunClampsExtremeQPS: a QPS high enough to truncate the tick to
// zero must clamp to the 1ns floor instead of panicking time.NewTicker.
func TestRunClampsExtremeQPS(t *testing.T) {
	est := func(ctx context.Context, q *query.Query) (float64, error) { return 1, nil }
	rep := Run(context.Background(), est, testQueries(), Config{
		QPS:      5e9, // tick would truncate to 0ns
		Duration: 20 * time.Millisecond,
	})
	if rep.Offered == 0 {
		t.Error("clamped run offered nothing")
	}
}

// TestAggregateEmptyLedger: folding zero lanes must yield an all-zero
// report — in particular no NaN rates from 0/0 divisions.
func TestAggregateEmptyLedger(t *testing.T) {
	agg := Ledger{}.Aggregate()
	if agg.Offered != 0 || agg.Sent != 0 || agg.OK != 0 || agg.Codec != "" ||
		agg.Classes != nil || agg.Clients != nil {
		t.Errorf("empty ledger aggregated to %+v, want zero report", agg)
	}
	for name, v := range map[string]float64{
		"target_qps": agg.TargetQPS, "achieved_qps": agg.AchievedQPS,
		"p50": agg.LatencyMsP50, "p99": agg.LatencyMsP99,
	} {
		if v != 0 || v != v { // v != v catches NaN
			t.Errorf("%s = %v in empty aggregate, want 0", name, v)
		}
	}
}

// TestAggregateCodecDisagreement: lanes served by different codecs must
// clear the aggregate codec column — a fleet number can only claim a
// codec when every lane used it.
func TestAggregateCodecDisagreement(t *testing.T) {
	l := Ledger{
		"a": Report{Codec: "binary", OK: 1},
		"b": Report{Codec: "json", OK: 2},
	}
	if agg := l.Aggregate(); agg.Codec != "" {
		t.Errorf("mixed-codec aggregate claims codec %q, want empty", agg.Codec)
	}
	same := Ledger{
		"a": Report{Codec: "binary", OK: 1},
		"b": Report{Codec: "binary", OK: 2},
	}
	if agg := same.Aggregate(); agg.Codec != "binary" {
		t.Errorf("unanimous aggregate codec = %q, want binary", agg.Codec)
	}
}

// TestAggregateMergesClassSplits: per-SLO-class splits sum counts and
// take the worst-lane percentile, and the shed fraction is recomputed
// over the summed counts.
func TestAggregateMergesClassSplits(t *testing.T) {
	l := Ledger{
		"a": Report{Classes: map[string]ClassReport{
			"gold": {Offered: 100, Sent: 100, OK: 90, Shed: 10, LatencyMsP99: 2.0, ShedFraction: 0.1},
		}},
		"b": Report{Classes: map[string]ClassReport{
			"gold":   {Offered: 100, Sent: 100, OK: 60, Shed: 40, LatencyMsP99: 5.0, ShedFraction: 0.4},
			"bronze": {Offered: 50, Sent: 50, OK: 50, LatencyMsP99: 1.0},
		}},
	}
	agg := l.Aggregate()
	gold := agg.Classes["gold"]
	if gold.Offered != 200 || gold.Shed != 50 {
		t.Errorf("gold counts offered=%d shed=%d, want 200/50", gold.Offered, gold.Shed)
	}
	if gold.LatencyMsP99 != 5.0 {
		t.Errorf("gold p99 = %v, want worst lane 5.0", gold.LatencyMsP99)
	}
	if gold.ShedFraction != 0.25 {
		t.Errorf("gold shed fraction = %v, want 0.25", gold.ShedFraction)
	}
	if _, ok := agg.Classes["bronze"]; !ok {
		t.Error("bronze class lost in aggregation")
	}
}
