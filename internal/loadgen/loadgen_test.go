package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"pace/internal/ce"
	"pace/internal/query"
	"pace/internal/remote"
)

func testQueries() []*query.Query {
	m := &query.Meta{
		TableNames: []string{"a"},
		AttrNames:  []string{"a0"},
		AttrOffset: []int{0, 1},
	}
	q := query.New(m)
	q.Bounds[0] = [2]float64{0.2, 0.8}
	return []*query.Query{q}
}

// TestRunAccountsEveryOutcome drives the generator against a fake target
// that answers with a fixed outcome mix and checks the report's ledger:
// every sent request lands in exactly one bucket, and each classified
// error reaches its own tally.
func TestRunAccountsEveryOutcome(t *testing.T) {
	var n atomic.Int64
	est := func(ctx context.Context, q *query.Query) (float64, error) {
		switch n.Add(1) % 6 {
		case 0:
			return 0, fmt.Errorf("shed: %w", remote.ErrOverloaded)
		case 1:
			return 0, fmt.Errorf("bad: %w", ce.ErrInvalidQuery)
		case 2:
			return 0, errors.New("connection reset")
		case 3:
			return 0, fmt.Errorf("backend dead: %w", remote.ErrUnavailable)
		default:
			return 42, nil
		}
	}
	rep := Run(context.Background(), est, testQueries(), Config{
		QPS:      2000,
		Duration: 200 * time.Millisecond,
		Timeout:  time.Second,
	})

	if rep.Sent == 0 {
		t.Fatal("no requests sent")
	}
	completed := rep.OK + rep.Shed + rep.Invalid + rep.Unavailable + rep.Errors
	if completed+rep.ClientDropped != rep.Sent {
		t.Errorf("ledger leak: sent %d != ok %d + shed %d + invalid %d + unavailable %d + errors %d + dropped %d",
			rep.Sent, rep.OK, rep.Shed, rep.Invalid, rep.Unavailable, rep.Errors, rep.ClientDropped)
	}
	// The outcome mix must show up in every bucket.
	for name, got := range map[string]int64{
		"ok": rep.OK, "shed": rep.Shed, "invalid": rep.Invalid,
		"unavailable": rep.Unavailable, "errors": rep.Errors,
	} {
		if got == 0 {
			t.Errorf("bucket %s empty despite mixed outcomes (report %+v)", name, rep)
		}
	}
	if rep.TargetQPS != 2000 {
		t.Errorf("TargetQPS = %v, want 2000", rep.TargetQPS)
	}
	if rep.AchievedQPS <= 0 || rep.DurationSec <= 0 {
		t.Errorf("achieved qps %v over %vs; want > 0", rep.AchievedQPS, rep.DurationSec)
	}
	if rep.LatencyMsP50 < 0 || rep.LatencyMsP99 < rep.LatencyMsP50 || rep.LatencyMsMax < rep.LatencyMsP99 {
		t.Errorf("latency percentiles not monotone: p50 %v p99 %v max %v",
			rep.LatencyMsP50, rep.LatencyMsP99, rep.LatencyMsMax)
	}
}

// TestRunCapsInFlight: a target that never answers within the run must
// trip the in-flight cap, and the capped sends count as client drops —
// the offered schedule never blocks on a slow server.
func TestRunCapsInFlight(t *testing.T) {
	est := func(ctx context.Context, q *query.Query) (float64, error) {
		<-ctx.Done() // hold the slot until the per-request timeout
		return 0, ctx.Err()
	}
	rep := Run(context.Background(), est, testQueries(), Config{
		QPS:         2000,
		Duration:    150 * time.Millisecond,
		Timeout:     500 * time.Millisecond,
		MaxInFlight: 8,
	})
	if rep.ClientDropped == 0 {
		t.Errorf("cap of 8 never tripped at 2000 QPS: %+v", rep)
	}
	if rep.OK != 0 {
		t.Errorf("%d requests served by a target that never answers", rep.OK)
	}
	if got := rep.OK + rep.Shed + rep.Invalid + rep.Unavailable + rep.Errors + rep.ClientDropped; got != rep.Sent {
		t.Errorf("ledger leak: sent %d, accounted %d", rep.Sent, got)
	}
}

// TestRunHonorsCancel: cancelling the run context stops offering load
// well before the configured duration.
func TestRunHonorsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	est := func(ctx context.Context, q *query.Query) (float64, error) { return 1, nil }
	start := time.Now()
	rep := Run(ctx, est, testQueries(), Config{
		QPS:      500,
		Duration: 30 * time.Second,
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("run survived cancel for %v", elapsed)
	}
	if rep.Sent == 0 {
		t.Error("nothing sent before cancel")
	}
}
