package loadgen

import (
	"fmt"
	"math"
	"sort"
)

// Calibration: does a replayed trace land where the recording did?
//
// A trace is only useful evidence if replaying it reproduces the
// outcome ledger of the run it recorded — same offered rate, same
// served/shed split, comparable percentiles. Calibrate diffs a
// replayed Report against a recorded one bucket by bucket and class by
// class and gates each delta against a tolerance, so CI can assert
// "this trace still reproduces the recorded behaviour" after any
// server-side change.

// CalTolerance bounds the acceptable recorded-vs-replayed deltas. The
// zero value takes the defaults.
type CalTolerance struct {
	// RateFrac bounds outcome-mix deltas: each bucket's share of
	// offered arrivals (ok, shed, errors, dropped) may move by at most
	// this absolute fraction (default 0.15).
	RateFrac float64
	// OfferedFrac bounds the offered-rate delta as a relative fraction
	// (default 0.10) — a replay that offers a different load isn't
	// replaying.
	OfferedFrac float64
	// LatencyFrac bounds relative served-percentile deltas (default
	// 1.0, i.e. 2× — latency is machine-bound, so the default gate is
	// deliberately loose; tighten it for same-host comparisons).
	LatencyFrac float64
	// MinBucket skips mix checks on buckets where both runs saw fewer
	// than this many arrivals (default 10) — tiny tails are noise.
	MinBucket int64
}

func (t CalTolerance) withDefaults() CalTolerance {
	if t.RateFrac == 0 {
		t.RateFrac = 0.15
	}
	if t.OfferedFrac == 0 {
		t.OfferedFrac = 0.10
	}
	if t.LatencyFrac == 0 {
		t.LatencyFrac = 1.0
	}
	if t.MinBucket == 0 {
		t.MinBucket = 10
	}
	return t
}

// CalCheck is one gated comparison.
type CalCheck struct {
	Name     string  `json:"name"`
	Recorded float64 `json:"recorded"`
	Replayed float64 `json:"replayed"`
	// Delta is the gated quantity (absolute or relative per the
	// check's semantics) and Limit its tolerance.
	Delta float64 `json:"delta"`
	Limit float64 `json:"limit"`
	Pass  bool    `json:"pass"`
}

// Calibration is the full report: every check, and the conjunction.
type Calibration struct {
	Pass   bool       `json:"pass"`
	Checks []CalCheck `json:"checks"`
}

// String renders the report as one line per check.
func (c Calibration) String() string {
	out := ""
	for _, ch := range c.Checks {
		verdict := "ok"
		if !ch.Pass {
			verdict = "FAIL"
		}
		out += fmt.Sprintf("%-32s recorded %10.4f replayed %10.4f delta %8.4f (limit %g) %s\n",
			ch.Name, ch.Recorded, ch.Replayed, ch.Delta, ch.Limit, verdict)
	}
	if c.Pass {
		return out + "calibration: PASS"
	}
	return out + "calibration: FAIL"
}

// Calibrate gates a replayed report against the recorded one.
func Calibrate(recorded, replayed Report, tol CalTolerance) Calibration {
	tol = tol.withDefaults()
	var cal Calibration
	cal.Pass = true
	add := func(ch CalCheck) {
		cal.Checks = append(cal.Checks, ch)
		if !ch.Pass {
			cal.Pass = false
		}
	}

	// Offered rate: relative delta.
	recRate := rate(recorded.Offered, recorded.DurationSec)
	repRate := rate(replayed.Offered, replayed.DurationSec)
	add(relCheck("offered_qps", recRate, repRate, tol.OfferedFrac))

	// Outcome mix: each bucket's share of offered arrivals.
	mix := func(prefix string, rec, rep Report) {
		for _, b := range []struct {
			name     string
			rec, rep int64
		}{
			{"ok", rec.OK, rep.OK},
			{"shed_429", rec.Shed, rep.Shed},
			{"errors", rec.Invalid + rec.Unavailable + rec.Errors, rep.Invalid + rep.Unavailable + rep.Errors},
			{"client_dropped", rec.ClientDropped, rep.ClientDropped},
		} {
			if b.rec < tol.MinBucket && b.rep < tol.MinBucket {
				continue
			}
			rf := frac(b.rec, rec.Offered)
			pf := frac(b.rep, rep.Offered)
			add(CalCheck{
				Name: prefix + b.name + "_fraction", Recorded: rf, Replayed: pf,
				Delta: math.Abs(pf - rf), Limit: tol.RateFrac,
				Pass: math.Abs(pf-rf) <= tol.RateFrac,
			})
		}
	}
	mix("", recorded, replayed)

	// Served latency percentiles: relative deltas, only when both runs
	// actually served traffic.
	if recorded.OK >= tol.MinBucket && replayed.OK >= tol.MinBucket {
		add(relCheck("latency_ms_p50", recorded.LatencyMsP50, replayed.LatencyMsP50, tol.LatencyFrac))
		add(relCheck("latency_ms_p99", recorded.LatencyMsP99, replayed.LatencyMsP99, tol.LatencyFrac))
	}

	// Per-SLO-class: shed fraction and served p99, for classes both
	// runs saw.
	names := make([]string, 0, len(recorded.Classes))
	for name := range recorded.Classes {
		if _, ok := replayed.Classes[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		rc, pc := recorded.Classes[name], replayed.Classes[name]
		if rc.Offered < tol.MinBucket && pc.Offered < tol.MinBucket {
			continue
		}
		add(CalCheck{
			Name: "class_" + name + "_shed_fraction", Recorded: rc.ShedFraction, Replayed: pc.ShedFraction,
			Delta: math.Abs(pc.ShedFraction - rc.ShedFraction), Limit: tol.RateFrac,
			Pass: math.Abs(pc.ShedFraction-rc.ShedFraction) <= tol.RateFrac,
		})
		if rc.OK >= tol.MinBucket && pc.OK >= tol.MinBucket {
			add(relCheck("class_"+name+"_latency_ms_p99", rc.LatencyMsP99, pc.LatencyMsP99, tol.LatencyFrac))
		}
	}
	return cal
}

func rate(n int64, sec float64) float64 {
	if sec <= 0 {
		return 0
	}
	return float64(n) / sec
}

func frac(n, of int64) float64 {
	if of <= 0 {
		return 0
	}
	return float64(n) / float64(of)
}

// relCheck gates a relative delta |b−a| / max(a, floor). The floor
// keeps near-zero recorded values from turning noise into failure.
func relCheck(name string, a, b, limit float64) CalCheck {
	base := math.Abs(a)
	if base < 1e-9 {
		base = 1e-9
	}
	delta := math.Abs(b-a) / base
	// Both effectively zero: pass trivially.
	if math.Abs(a) < 1e-9 && math.Abs(b) < 1e-9 {
		delta = 0
	}
	return CalCheck{Name: name, Recorded: a, Replayed: b, Delta: delta, Limit: limit, Pass: delta <= limit}
}
