package loadgen

import (
	"context"
	"fmt"
	"testing"
	"time"

	"pace/internal/query"
	"pace/internal/remote"
	"pace/internal/workloadgen"
)

func testSchedule(t *testing.T) *Schedule {
	t.Helper()
	spec := workloadgen.Spec{
		Seed:    11,
		Clients: workloadgen.ClientSpec{N: 3, MeanQPS: 800, RateDist: "zipf"},
		Arrival: workloadgen.ArrivalSpec{Process: "gamma", Shape: 0.5},
		Classes: []workloadgen.ClassSpec{
			{Name: "gold", Weight: 0.6},
			{Name: "bronze", Weight: 0.4},
		},
	}
	s, err := workloadgen.Generate(spec, testQueries(), nil, 300*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Arrivals) == 0 {
		t.Fatal("planned schedule is empty")
	}
	return s
}

// TestRunScheduleSplitsLedger: replaying a planned schedule fires every
// arrival exactly once, under the planned client identity, and the
// report's per-class and per-client splits each account for the whole
// stream.
func TestRunScheduleSplitsLedger(t *testing.T) {
	sched := testSchedule(t)
	perClient := map[string]int64{}
	fire := func(ctx context.Context, client string, q *query.Query) (float64, error) {
		if client == "" {
			t.Error("fired without a client identity")
		}
		// Shed one client entirely so the class splits diverge.
		if client == "c001" {
			return 0, fmt.Errorf("busy: %w", remote.ErrOverloaded)
		}
		return 42, nil
	}
	rep := RunSchedule(context.Background(), fire, sched, Config{Timeout: time.Second})

	if rep.Offered != int64(len(sched.Arrivals)) {
		t.Errorf("offered %d, planned %d arrivals", rep.Offered, len(sched.Arrivals))
	}
	if rep.Offered != rep.Sent+rep.ClientDropped {
		t.Errorf("arrival leak: offered %d != sent %d + dropped %d",
			rep.Offered, rep.Sent, rep.ClientDropped)
	}
	if got := rep.OK + rep.Shed + rep.Invalid + rep.Unavailable + rep.Errors; got != rep.Sent {
		t.Errorf("ledger leak: sent %d, accounted %d", rep.Sent, got)
	}

	// Class splits partition the stream.
	var classOffered, classSent int64
	for name, c := range rep.Classes {
		classOffered += c.Offered
		classSent += c.Sent
		if c.Offered != c.Sent+c.ClientDropped {
			t.Errorf("class %s: offered %d != sent %d + dropped %d",
				name, c.Offered, c.Sent, c.ClientDropped)
		}
	}
	if classOffered != rep.Offered || classSent != rep.Sent {
		t.Errorf("class splits cover %d/%d offered, want %d/%d",
			classOffered, classSent, rep.Offered, rep.Sent)
	}

	// Client splits partition the stream and carry their planned class.
	var clientOffered int64
	for id, c := range rep.Clients {
		clientOffered += c.Offered
		perClient[id] = c.Offered
		var want string
		for _, pc := range sched.Clients {
			if pc.ID == id {
				want = pc.Class
			}
		}
		if c.Class != want {
			t.Errorf("client %s reported class %q, planned %q", id, c.Class, want)
		}
	}
	if clientOffered != rep.Offered {
		t.Errorf("client splits cover %d offered, want %d", clientOffered, rep.Offered)
	}

	// The shed client's split shows the shedding; a served client's not.
	if c := rep.Clients["c001"]; c.Shed != c.Sent || c.OK != 0 {
		t.Errorf("c001 fully shed upstream but reported %+v", c)
	}
	if c := rep.Clients["c000"]; c.OK != c.Sent || c.Shed != 0 {
		t.Errorf("c000 fully served but reported %+v", c)
	}

	// Replay counts must match the plan exactly, per client.
	planned := map[string]int64{}
	for _, a := range sched.Arrivals {
		planned[sched.Clients[a.Client].ID]++
	}
	for id, n := range planned {
		if perClient[id] != n {
			t.Errorf("client %s planned %d arrivals, replay offered %d", id, n, perClient[id])
		}
	}
}

// TestRunScheduleHonorsCancel: cancelling mid-replay stops the stream.
func TestRunScheduleHonorsCancel(t *testing.T) {
	spec, err := workloadgen.Builtin("uniform")
	if err != nil {
		t.Fatal(err)
	}
	spec.Clients.MeanQPS = 100
	sched, err := workloadgen.Generate(spec, testQueries(), nil, 30*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	fire := func(ctx context.Context, client string, q *query.Query) (float64, error) { return 1, nil }
	start := time.Now()
	rep := RunSchedule(ctx, fire, sched, Config{})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("replay survived cancel for %v", elapsed)
	}
	if rep.Offered >= int64(len(sched.Arrivals)) {
		t.Error("cancel did not curtail the planned stream")
	}
}

// TestCalibrate: a replay matching the recording passes; one with a
// materially different shed mix or offered rate fails the named check.
func TestCalibrate(t *testing.T) {
	recorded := Report{
		Offered: 1000, Sent: 950, OK: 900, Shed: 50, ClientDropped: 50,
		DurationSec: 10, LatencyMsP50: 2, LatencyMsP99: 8,
		Classes: map[string]ClassReport{
			"gold": {Offered: 700, Sent: 680, OK: 660, Shed: 20, ShedFraction: 0.03, LatencyMsP99: 8},
		},
	}
	if cal := Calibrate(recorded, recorded, CalTolerance{}); !cal.Pass {
		t.Fatalf("self-calibration failed:\n%s", cal)
	}

	// Double the shed fraction: the shed check must fail, and only it.
	bad := recorded
	bad.OK, bad.Shed = 650, 300
	cal := Calibrate(recorded, bad, CalTolerance{})
	if cal.Pass {
		t.Fatal("tripled shed fraction passed calibration")
	}
	failed := map[string]bool{}
	for _, ch := range cal.Checks {
		if !ch.Pass {
			failed[ch.Name] = true
		}
	}
	if !failed["shed_429_fraction"] {
		t.Errorf("shed_429_fraction not among failures %v", failed)
	}

	// Half the offered rate: the rate gate fails.
	slow := recorded
	slow.DurationSec = 20
	cal = Calibrate(recorded, slow, CalTolerance{})
	if cal.Pass {
		t.Fatal("halved offered rate passed calibration")
	}

	// Per-class p99 regression beyond the latency tolerance fails.
	lag := recorded
	lag.Classes = map[string]ClassReport{
		"gold": {Offered: 700, Sent: 680, OK: 660, Shed: 20, ShedFraction: 0.03, LatencyMsP99: 40},
	}
	cal = Calibrate(recorded, lag, CalTolerance{})
	if cal.Pass {
		t.Fatal("5x class p99 passed calibration")
	}
}
