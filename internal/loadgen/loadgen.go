// Package loadgen replays a query workload against an estimator target
// and reports what the service did with it: latency percentiles for
// served requests, how much was shed (429) and how much failed
// outright. It drives the target open-loop — requests fire on schedule
// whether or not earlier ones returned — because that is the arrival
// process a shedding server must survive: a closed-loop client would
// politely slow down exactly when the test should hurt.
//
// Two firing modes share one outcome ledger:
//
//   - Run offers a fixed uniform rate (the classic constant-QPS loop);
//   - RunSchedule fires a pre-planned workloadgen.Schedule — skewed
//     clients, bursty interarrivals, per-arrival SLO classes — and the
//     Report additionally splits outcomes per SLO class and per client.
package loadgen

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"pace/internal/ce"
	"pace/internal/metrics"
	"pace/internal/query"
	"pace/internal/remote"
)

// Estimate is the probe the generator fires: one estimate call against
// the target under test.
type Estimate func(ctx context.Context, q *query.Query) (float64, error)

// Config shapes one load run.
type Config struct {
	// QPS is the offered request rate (required, > 0 for Run; ignored
	// by RunSchedule, where the schedule defines the timing). The
	// usable ceiling is bounded by the scheduler tick: intervals
	// truncate at 1ns, so rates beyond ~1e9 QPS all collapse to
	// back-to-back ticks rather than panicking.
	QPS float64
	// Duration is how long to offer load (default 10s; ignored by
	// RunSchedule, which runs to the end of its schedule).
	Duration time.Duration
	// Timeout bounds each request (default 5s); a request that exceeds
	// it counts as an error, not a success with huge latency.
	Timeout time.Duration
	// MaxInFlight caps concurrent outstanding requests (default 4096).
	// When the cap is hit the generator counts a client-side drop
	// instead of blocking the schedule — the offered rate stays honest.
	MaxInFlight int
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4096
	}
	return c
}

// ClassReport is one SLO class's slice of the ledger: counts and
// latency/shed percentiles over exactly the requests that class fired.
type ClassReport struct {
	Offered int64 `json:"offered"`
	Sent    int64 `json:"sent"`
	OK      int64 `json:"ok"`
	Shed    int64 `json:"shed_429"`
	// Errors folds invalid, unavailable and everything else — per-class
	// triage uses the top-level Report; the class split is about
	// service differentiation (who got served, who got shed, how fast).
	Errors        int64 `json:"errors"`
	ClientDropped int64 `json:"client_dropped"`

	LatencyMsP50 float64 `json:"latency_ms_p50"`
	LatencyMsP90 float64 `json:"latency_ms_p90"`
	LatencyMsP99 float64 `json:"latency_ms_p99"`
	ShedMsP99    float64 `json:"shed_ms_p99"`
	// ShedFraction is Shed/Offered — the class's probability of being
	// turned away, the headline of the uniform-vs-bursty comparison.
	ShedFraction float64 `json:"shed_fraction"`
}

// ClientReport is one client identity's outcome split.
type ClientReport struct {
	Class   string `json:"class,omitempty"`
	Offered int64  `json:"offered"`
	Sent    int64  `json:"sent"`
	OK      int64  `json:"ok"`
	Shed    int64  `json:"shed_429"`
	Errors  int64  `json:"errors"`
	ClientDropped int64 `json:"client_dropped"`
}

// Report is the outcome of one load run. Latencies are milliseconds.
type Report struct {
	TargetQPS   float64 `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"` // completed (any outcome) per second
	DurationSec float64 `json:"duration_sec"`

	// Offered counts every planned arrival; each lands in exactly one
	// of the outcome buckets below or in ClientDropped. Sent counts the
	// arrivals that actually fired (Offered − ClientDropped), so one
	// arrival is never double-booked as both sent and dropped.
	Offered int64 `json:"offered"`
	Sent    int64 `json:"sent"`
	OK      int64 `json:"ok"`
	Shed    int64 `json:"shed_429"`
	Invalid int64 `json:"invalid"`
	// Unavailable counts retryable outages — network refusals and bare
	// 503s, the signature of a backend dying or failing over behind
	// pacerouter. Kept apart from Errors so a chaos run can assert
	// "outage happened, nothing actually broke" (errors == 0).
	Unavailable   int64 `json:"unavailable_503"`
	Errors        int64 `json:"errors"` // timeouts and everything else
	ClientDropped int64 `json:"client_dropped"`

	// Percentiles over served (OK) requests.
	LatencyMsP50 float64 `json:"latency_ms_p50"`
	LatencyMsP90 float64 `json:"latency_ms_p90"`
	LatencyMsP99 float64 `json:"latency_ms_p99"`
	LatencyMsMax float64 `json:"latency_ms_max"`
	// Shed latency: how quickly the server said 429 — load shedding
	// only helps if rejection is much cheaper than service.
	ShedMsP99 float64 `json:"shed_ms_p99"`

	// Classes and Clients split the ledger per SLO class and per client
	// identity. Filled by RunSchedule (the uniform Run has no class or
	// client structure to split on).
	Classes map[string]ClassReport  `json:"classes,omitempty"`
	Clients map[string]ClientReport `json:"clients,omitempty"`

	// Wire accounting, filled when the lane exposes its client's Stats:
	// the data codec that actually served the lane ("json" may appear
	// after a sticky 415 downgrade of a "binary" lane) and the request/
	// response body bytes it moved — the per-tenant bandwidth column
	// behind BENCH_remote.json's codec comparison.
	Codec        string `json:"codec,omitempty"`
	WireBytesOut int64  `json:"wire_bytes_out,omitempty"`
	WireBytesIn  int64  `json:"wire_bytes_in,omitempty"`
}

// outcome is the classified result of one fired request.
type outcome int

const (
	outOK outcome = iota
	outShed
	outInvalid
	outUnavailable
	outError
)

// classify maps an estimate error onto the ledger's buckets.
func classify(err error) outcome {
	switch {
	case err == nil:
		return outOK
	case errors.Is(err, remote.ErrOverloaded):
		return outShed
	case errors.Is(err, ce.ErrInvalidQuery):
		return outInvalid
	case errors.Is(err, remote.ErrUnavailable):
		return outUnavailable
	default:
		return outError
	}
}

// classAcc accumulates one SLO class's (or one client's latency-free)
// slice of the ledger under the collector's lock.
type classAcc struct {
	rep       ClassReport
	latencies []float64
	shedLats  []float64
}

// collector folds fired-request outcomes into a Report. One lock
// guards everything; request goroutines touch it once per completion.
type collector struct {
	mu        sync.Mutex
	rep       Report
	latencies []float64
	shedLats  []float64
	classes   map[string]*classAcc
	clients   map[string]*ClientReport
}

// record books one completed request. class and client are "" for the
// uniform loop (no splits).
func (c *collector) record(out outcome, ms float64, class, client string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch out {
	case outOK:
		c.rep.OK++
		c.latencies = append(c.latencies, ms)
	case outShed:
		c.rep.Shed++
		c.shedLats = append(c.shedLats, ms)
	case outInvalid:
		c.rep.Invalid++
	case outUnavailable:
		c.rep.Unavailable++
	case outError:
		c.rep.Errors++
	}
	if class != "" {
		ca := c.classAcc(class)
		ca.rep.Sent++
		switch out {
		case outOK:
			ca.rep.OK++
			ca.latencies = append(ca.latencies, ms)
		case outShed:
			ca.rep.Shed++
			ca.shedLats = append(ca.shedLats, ms)
		default:
			ca.rep.Errors++
		}
	}
	if client != "" {
		cl := c.clientAcc(client)
		cl.Sent++
		switch out {
		case outOK:
			cl.OK++
		case outShed:
			cl.Shed++
		default:
			cl.Errors++
		}
	}
}

// arrival books one planned arrival and whether it was dropped at the
// in-flight cap (one arrival, one outcome: dropped arrivals never also
// count as sent).
func (c *collector) arrival(dropped bool, class, client string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rep.Offered++
	if dropped {
		c.rep.ClientDropped++
	} else {
		c.rep.Sent++
	}
	if class != "" {
		ca := c.classAcc(class)
		ca.rep.Offered++
		if dropped {
			ca.rep.ClientDropped++
		}
	}
	if client != "" {
		cl := c.clientAcc(client)
		cl.Offered++
		if dropped {
			cl.ClientDropped++
		}
	}
}

func (c *collector) classAcc(class string) *classAcc {
	if c.classes == nil {
		c.classes = make(map[string]*classAcc)
	}
	ca := c.classes[class]
	if ca == nil {
		ca = &classAcc{}
		c.classes[class] = ca
	}
	return ca
}

func (c *collector) clientAcc(client string) *ClientReport {
	if c.clients == nil {
		c.clients = make(map[string]*ClientReport)
	}
	cl := c.clients[client]
	if cl == nil {
		cl = &ClientReport{}
		c.clients[client] = cl
	}
	return cl
}

// finish computes the derived columns and returns the report.
func (c *collector) finish(targetQPS float64, elapsed time.Duration) Report {
	rep := c.rep
	rep.TargetQPS = targetQPS
	rep.DurationSec = elapsed.Seconds()
	completed := rep.OK + rep.Shed + rep.Invalid + rep.Unavailable + rep.Errors
	if elapsed > 0 {
		rep.AchievedQPS = float64(completed) / elapsed.Seconds()
	}
	rep.LatencyMsP50 = metrics.Percentile(c.latencies, 50)
	rep.LatencyMsP90 = metrics.Percentile(c.latencies, 90)
	rep.LatencyMsP99 = metrics.Percentile(c.latencies, 99)
	rep.LatencyMsMax = metrics.Percentile(c.latencies, 100)
	rep.ShedMsP99 = metrics.Percentile(c.shedLats, 99)
	if len(c.classes) > 0 {
		rep.Classes = make(map[string]ClassReport, len(c.classes))
		for name, ca := range c.classes {
			cr := ca.rep
			cr.LatencyMsP50 = metrics.Percentile(ca.latencies, 50)
			cr.LatencyMsP90 = metrics.Percentile(ca.latencies, 90)
			cr.LatencyMsP99 = metrics.Percentile(ca.latencies, 99)
			cr.ShedMsP99 = metrics.Percentile(ca.shedLats, 99)
			if cr.Offered > 0 {
				cr.ShedFraction = float64(cr.Shed) / float64(cr.Offered)
			}
			rep.Classes[name] = cr
		}
	}
	if len(c.clients) > 0 {
		rep.Clients = make(map[string]ClientReport, len(c.clients))
		for name, cl := range c.clients {
			rep.Clients[name] = *cl
		}
	}
	return rep
}

// Run offers cfg.QPS of estimate traffic over the queries (round-robin)
// for cfg.Duration, then waits for stragglers and reports. ctx cancels
// the run early.
func Run(ctx context.Context, est Estimate, queries []*query.Query, cfg Config) Report {
	cfg = cfg.withDefaults()
	interval := time.Duration(float64(time.Second) / cfg.QPS)
	// Clamp: above ~1e9 QPS the computed tick truncates to zero, and
	// time.NewTicker panics on non-positive intervals. 1ns is the
	// effective rate ceiling — ticks then fire back to back and the
	// achieved rate is whatever the host can schedule.
	if interval < time.Nanosecond {
		interval = time.Nanosecond
	}
	deadline := time.Now().Add(cfg.Duration)

	var (
		col      collector
		inFlight atomic.Int64
		wg       sync.WaitGroup
	)

	start := time.Now()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	i := 0
loop:
	for time.Now().Before(deadline) {
		select {
		case <-ctx.Done():
			break loop
		case <-ticker.C:
		}
		q := queries[i%len(queries)]
		i++
		dropped := inFlight.Load() >= int64(cfg.MaxInFlight)
		col.arrival(dropped, "", "")
		if dropped {
			continue
		}
		inFlight.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer inFlight.Add(-1)
			rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
			defer cancel()
			t0 := time.Now()
			_, err := est(rctx, q)
			ms := float64(time.Since(t0).Microseconds()) / 1e3
			col.record(classify(err), ms, "", "")
		}()
	}
	wg.Wait()
	return col.finish(cfg.QPS, time.Since(start))
}

// Lane is one tenant's traffic stream in a multi-tenant run: its own
// estimate function (routed at that tenant), query pool and offered
// rate.
type Lane struct {
	// Target names the lane in the ledger (the tenant id).
	Target string
	// Est fires one estimate against the lane's tenant.
	Est Estimate
	// Stats, when set, snapshots the lane's wire counters (normally the
	// RemoteTarget.Stats method behind Est); the lane's Report then
	// carries the codec and byte columns as the delta across the run.
	Stats func() remote.Stats
	// Queries is the lane's replayed pool.
	Queries []*query.Query
	// Config shapes the lane's offered load.
	Config Config
	// Schedule, when set, replaces the uniform loop: the lane fires
	// this planned stream (RunSchedule) and FireAs routes per-client
	// identities. Queries and Config.QPS are ignored.
	Schedule *Schedule
	// FireAs fires one estimate under a client identity; nil lanes
	// fall back to Est for every client.
	FireAs Fire
}

// Ledger is the per-tenant outcome of a multi-tenant run: one Report per
// lane, keyed by target id. It is the evidence tenant isolation claims
// rest on — each tenant's served/shed/latency ledger is separate, so a
// hammered tenant's collapse is visible next to its neighbor's health.
type Ledger map[string]Report

// Aggregate folds a ledger into one fleet-level report: counts, rates
// and wire bytes sum across lanes (per-class and per-client splits
// included); latency percentiles take the worst lane (the isolation
// claim is "no lane degrades", so the aggregate's percentile column is
// the weakest tenant's); the codec column is kept only when every lane
// agrees. TargetQPS and AchievedQPS become the fleet's aggregate
// offered and admitted rates — the capacity-scaling column of the
// bench harness.
func (l Ledger) Aggregate() Report {
	var agg Report
	first := true
	for _, rep := range l {
		agg.TargetQPS += rep.TargetQPS
		agg.AchievedQPS += rep.AchievedQPS
		agg.Offered += rep.Offered
		agg.Sent += rep.Sent
		agg.OK += rep.OK
		agg.Shed += rep.Shed
		agg.Invalid += rep.Invalid
		agg.Unavailable += rep.Unavailable
		agg.Errors += rep.Errors
		agg.ClientDropped += rep.ClientDropped
		agg.WireBytesOut += rep.WireBytesOut
		agg.WireBytesIn += rep.WireBytesIn
		if rep.DurationSec > agg.DurationSec {
			agg.DurationSec = rep.DurationSec
		}
		for _, p := range []struct{ dst, src *float64 }{
			{&agg.LatencyMsP50, &rep.LatencyMsP50},
			{&agg.LatencyMsP90, &rep.LatencyMsP90},
			{&agg.LatencyMsP99, &rep.LatencyMsP99},
			{&agg.LatencyMsMax, &rep.LatencyMsMax},
			{&agg.ShedMsP99, &rep.ShedMsP99},
		} {
			if *p.src > *p.dst {
				*p.dst = *p.src
			}
		}
		for name, cr := range rep.Classes {
			if agg.Classes == nil {
				agg.Classes = make(map[string]ClassReport)
			}
			agg.Classes[name] = mergeClass(agg.Classes[name], cr)
		}
		for name, cl := range rep.Clients {
			if agg.Clients == nil {
				agg.Clients = make(map[string]ClientReport)
			}
			agg.Clients[name] = mergeClient(agg.Clients[name], cl)
		}
		if first {
			agg.Codec = rep.Codec
			first = false
		} else if agg.Codec != rep.Codec {
			agg.Codec = ""
		}
	}
	return agg
}

// mergeClass folds one lane's class slice into the aggregate: counts
// sum, percentiles take the worst lane, and the shed fraction is
// recomputed over the summed counts.
func mergeClass(a, b ClassReport) ClassReport {
	a.Offered += b.Offered
	a.Sent += b.Sent
	a.OK += b.OK
	a.Shed += b.Shed
	a.Errors += b.Errors
	a.ClientDropped += b.ClientDropped
	for _, p := range []struct{ dst, src *float64 }{
		{&a.LatencyMsP50, &b.LatencyMsP50},
		{&a.LatencyMsP90, &b.LatencyMsP90},
		{&a.LatencyMsP99, &b.LatencyMsP99},
		{&a.ShedMsP99, &b.ShedMsP99},
	} {
		if *p.src > *p.dst {
			*p.dst = *p.src
		}
	}
	if a.Offered > 0 {
		a.ShedFraction = float64(a.Shed) / float64(a.Offered)
	}
	return a
}

func mergeClient(a, b ClientReport) ClientReport {
	if a.Class == "" {
		a.Class = b.Class
	}
	a.Offered += b.Offered
	a.Sent += b.Sent
	a.OK += b.OK
	a.Shed += b.Shed
	a.Errors += b.Errors
	a.ClientDropped += b.ClientDropped
	return a
}

// RunLanes offers every lane's load concurrently against its own tenant
// and collects the per-tenant ledger. ctx cancels all lanes.
func RunLanes(ctx context.Context, lanes []Lane) Ledger {
	reports := make([]Report, len(lanes))
	var wg sync.WaitGroup
	for i, lane := range lanes {
		wg.Add(1)
		go func(i int, lane Lane) {
			defer wg.Done()
			var before remote.Stats
			if lane.Stats != nil {
				before = lane.Stats()
			}
			var rep Report
			if lane.Schedule != nil {
				fire := lane.FireAs
				if fire == nil {
					fire = func(ctx context.Context, _ string, q *query.Query) (float64, error) {
						return lane.Est(ctx, q)
					}
				}
				rep = RunSchedule(ctx, fire, lane.Schedule, lane.Config)
			} else {
				rep = Run(ctx, lane.Est, lane.Queries, lane.Config)
			}
			if lane.Stats != nil {
				after := lane.Stats()
				rep.Codec = after.Codec
				rep.WireBytesOut = after.BytesOut - before.BytesOut
				rep.WireBytesIn = after.BytesIn - before.BytesIn
			}
			reports[i] = rep
		}(i, lane)
	}
	wg.Wait()
	ledger := make(Ledger, len(lanes))
	for i, lane := range lanes {
		ledger[lane.Target] = reports[i]
	}
	return ledger
}
