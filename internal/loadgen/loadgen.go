// Package loadgen replays a query workload against an estimator target
// at a fixed offered rate and reports what the service did with it:
// latency percentiles for served requests, how much was shed (429) and
// how much failed outright. It drives the target open-loop — requests
// fire on schedule whether or not earlier ones returned — because that
// is the arrival process a shedding server must survive: a closed-loop
// client would politely slow down exactly when the test should hurt.
package loadgen

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"pace/internal/ce"
	"pace/internal/metrics"
	"pace/internal/query"
	"pace/internal/remote"
)

// Estimate is the probe the generator fires: one estimate call against
// the target under test.
type Estimate func(ctx context.Context, q *query.Query) (float64, error)

// Config shapes one load run.
type Config struct {
	// QPS is the offered request rate (required, > 0).
	QPS float64
	// Duration is how long to offer load (default 10s).
	Duration time.Duration
	// Timeout bounds each request (default 5s); a request that exceeds
	// it counts as an error, not a success with huge latency.
	Timeout time.Duration
	// MaxInFlight caps concurrent outstanding requests (default 4096).
	// When the cap is hit the generator counts a client-side drop
	// instead of blocking the schedule — the offered rate stays honest.
	MaxInFlight int
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4096
	}
	return c
}

// Report is the outcome of one load run. Latencies are milliseconds.
type Report struct {
	TargetQPS   float64 `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"` // completed (any outcome) per second
	DurationSec float64 `json:"duration_sec"`

	Sent    int64 `json:"sent"`
	OK      int64 `json:"ok"`
	Shed    int64 `json:"shed_429"`
	Invalid int64 `json:"invalid"`
	// Unavailable counts retryable outages — network refusals and bare
	// 503s, the signature of a backend dying or failing over behind
	// pacerouter. Kept apart from Errors so a chaos run can assert
	// "outage happened, nothing actually broke" (errors == 0).
	Unavailable   int64 `json:"unavailable_503"`
	Errors        int64 `json:"errors"` // timeouts and everything else
	ClientDropped int64 `json:"client_dropped"`

	// Percentiles over served (OK) requests.
	LatencyMsP50 float64 `json:"latency_ms_p50"`
	LatencyMsP90 float64 `json:"latency_ms_p90"`
	LatencyMsP99 float64 `json:"latency_ms_p99"`
	LatencyMsMax float64 `json:"latency_ms_max"`
	// Shed latency: how quickly the server said 429 — load shedding
	// only helps if rejection is much cheaper than service.
	ShedMsP99 float64 `json:"shed_ms_p99"`

	// Wire accounting, filled when the lane exposes its client's Stats:
	// the data codec that actually served the lane ("json" may appear
	// after a sticky 415 downgrade of a "binary" lane) and the request/
	// response body bytes it moved — the per-tenant bandwidth column
	// behind BENCH_remote.json's codec comparison.
	Codec        string `json:"codec,omitempty"`
	WireBytesOut int64  `json:"wire_bytes_out,omitempty"`
	WireBytesIn  int64  `json:"wire_bytes_in,omitempty"`
}

// Run offers cfg.QPS of estimate traffic over the queries (round-robin)
// for cfg.Duration, then waits for stragglers and reports. ctx cancels
// the run early.
func Run(ctx context.Context, est Estimate, queries []*query.Query, cfg Config) Report {
	cfg = cfg.withDefaults()
	interval := time.Duration(float64(time.Second) / cfg.QPS)
	deadline := time.Now().Add(cfg.Duration)

	var (
		mu        sync.Mutex
		latencies []float64
		shedLats  []float64
		rep       Report
		inFlight  atomic.Int64
		wg        sync.WaitGroup
	)
	rep.TargetQPS = cfg.QPS

	start := time.Now()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	i := 0
loop:
	for time.Now().Before(deadline) {
		select {
		case <-ctx.Done():
			break loop
		case <-ticker.C:
		}
		q := queries[i%len(queries)]
		i++
		rep.Sent++
		if inFlight.Load() >= int64(cfg.MaxInFlight) {
			rep.ClientDropped++
			continue
		}
		inFlight.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer inFlight.Add(-1)
			rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
			defer cancel()
			t0 := time.Now()
			_, err := est(rctx, q)
			ms := float64(time.Since(t0).Microseconds()) / 1e3
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				rep.OK++
				latencies = append(latencies, ms)
			case errors.Is(err, remote.ErrOverloaded):
				rep.Shed++
				shedLats = append(shedLats, ms)
			case errors.Is(err, ce.ErrInvalidQuery):
				rep.Invalid++
			case errors.Is(err, remote.ErrUnavailable):
				rep.Unavailable++
			default:
				rep.Errors++
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep.DurationSec = elapsed.Seconds()
	completed := rep.OK + rep.Shed + rep.Invalid + rep.Unavailable + rep.Errors
	if elapsed > 0 {
		rep.AchievedQPS = float64(completed) / elapsed.Seconds()
	}
	rep.LatencyMsP50 = metrics.Percentile(latencies, 50)
	rep.LatencyMsP90 = metrics.Percentile(latencies, 90)
	rep.LatencyMsP99 = metrics.Percentile(latencies, 99)
	rep.LatencyMsMax = metrics.Percentile(latencies, 100)
	rep.ShedMsP99 = metrics.Percentile(shedLats, 99)
	return rep
}

// Lane is one tenant's traffic stream in a multi-tenant run: its own
// estimate function (routed at that tenant), query pool and offered
// rate.
type Lane struct {
	// Target names the lane in the ledger (the tenant id).
	Target string
	// Est fires one estimate against the lane's tenant.
	Est Estimate
	// Stats, when set, snapshots the lane's wire counters (normally the
	// RemoteTarget.Stats method behind Est); the lane's Report then
	// carries the codec and byte columns as the delta across the run.
	Stats func() remote.Stats
	// Queries is the lane's replayed pool.
	Queries []*query.Query
	// Config shapes the lane's offered load.
	Config Config
}

// Ledger is the per-tenant outcome of a multi-tenant run: one Report per
// lane, keyed by target id. It is the evidence tenant isolation claims
// rest on — each tenant's served/shed/latency ledger is separate, so a
// hammered tenant's collapse is visible next to its neighbor's health.
type Ledger map[string]Report

// Aggregate folds a ledger into one fleet-level report: counts, rates
// and wire bytes sum across lanes; latency percentiles take the
// worst lane (the isolation claim is "no lane degrades", so the
// aggregate's percentile column is the weakest tenant's); the codec
// column is kept only when every lane agrees. TargetQPS and
// AchievedQPS become the fleet's aggregate offered and admitted rates —
// the capacity-scaling column of the bench harness.
func (l Ledger) Aggregate() Report {
	var agg Report
	first := true
	for _, rep := range l {
		agg.TargetQPS += rep.TargetQPS
		agg.AchievedQPS += rep.AchievedQPS
		agg.Sent += rep.Sent
		agg.OK += rep.OK
		agg.Shed += rep.Shed
		agg.Invalid += rep.Invalid
		agg.Unavailable += rep.Unavailable
		agg.Errors += rep.Errors
		agg.ClientDropped += rep.ClientDropped
		agg.WireBytesOut += rep.WireBytesOut
		agg.WireBytesIn += rep.WireBytesIn
		if rep.DurationSec > agg.DurationSec {
			agg.DurationSec = rep.DurationSec
		}
		for _, p := range []struct{ dst, src *float64 }{
			{&agg.LatencyMsP50, &rep.LatencyMsP50},
			{&agg.LatencyMsP90, &rep.LatencyMsP90},
			{&agg.LatencyMsP99, &rep.LatencyMsP99},
			{&agg.LatencyMsMax, &rep.LatencyMsMax},
			{&agg.ShedMsP99, &rep.ShedMsP99},
		} {
			if *p.src > *p.dst {
				*p.dst = *p.src
			}
		}
		if first {
			agg.Codec = rep.Codec
			first = false
		} else if agg.Codec != rep.Codec {
			agg.Codec = ""
		}
	}
	return agg
}

// RunLanes offers every lane's load concurrently against its own tenant
// and collects the per-tenant ledger. ctx cancels all lanes.
func RunLanes(ctx context.Context, lanes []Lane) Ledger {
	reports := make([]Report, len(lanes))
	var wg sync.WaitGroup
	for i, lane := range lanes {
		wg.Add(1)
		go func(i int, lane Lane) {
			defer wg.Done()
			var before remote.Stats
			if lane.Stats != nil {
				before = lane.Stats()
			}
			rep := Run(ctx, lane.Est, lane.Queries, lane.Config)
			if lane.Stats != nil {
				after := lane.Stats()
				rep.Codec = after.Codec
				rep.WireBytesOut = after.BytesOut - before.BytesOut
				rep.WireBytesIn = after.BytesIn - before.BytesIn
			}
			reports[i] = rep
		}(i, lane)
	}
	wg.Wait()
	ledger := make(Ledger, len(lanes))
	for i, lane := range lanes {
		ledger[lane.Target] = reports[i]
	}
	return ledger
}
