// Package bench is the repository's benchmark harness: it sweeps a
// declarative suite specification (datasets × estimator models × attack
// methods × fault profiles × codecs) against in-process worlds or a live
// fleet and emits every cell as a machine-readable Record into one
// BENCH.json trajectory. The trajectory is append-and-diff: each run
// appends records stamped with the git revision, and Compare diffs the
// latest records per cell between two trajectories so CI can gate on
// speed and attack-efficacy regressions.
package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"pace/internal/metrics"
)

// SchemaVersion identifies the record schema; Load refuses a trajectory
// from a different major schema rather than misreading it.
const SchemaVersion = 1

// Record is one benchmark cell's outcome — the unified schema every
// producer (suite runner, capacity sweep, legacy importer) emits.
type Record struct {
	// Suite and Cell identify the measurement: Suite names the sweep,
	// Cell is unique within it. Compare keys on "suite/cell".
	Suite string `json:"suite"`
	Cell  string `json:"cell"`
	// Kind classifies the cell: "attack", "load", "capacity" or
	// "imported".
	Kind string `json:"kind"`
	// GitRev and When stamp provenance (filled by the CLI; When is
	// RFC3339).
	GitRev string `json:"git_rev,omitempty"`
	When   string `json:"when,omitempty"`
	// Seed is the deterministic seed the cell ran under.
	Seed int64 `json:"seed,omitempty"`

	// Sweep coordinates (empty when not applicable).
	Dataset string `json:"dataset,omitempty"`
	Model   string `json:"model,omitempty"`
	Method  string `json:"method,omitempty"`
	Faults  string `json:"faults,omitempty"`
	// Codec is the wire codec of a remote cell ("binary", "json") or
	// "local" for an in-process target.
	Codec string `json:"codec,omitempty"`
	// Workload names the planned stream of a workload-shaped load or
	// capacity cell (a built-in profile or spec file); empty means the
	// uniform open loop.
	Workload string `json:"workload,omitempty"`
	// Nodes is the fleet size of a capacity cell.
	Nodes int `json:"nodes,omitempty"`

	// Speed metrics.
	WallSec    float64 `json:"wall_sec"`
	Throughput float64 `json:"throughput_qps,omitempty"`
	// Latency percentiles in milliseconds over the cell's target calls
	// (attack cells: estimate latency from the obs histogram; load
	// cells: served-request latency).
	LatencyMsP50 float64 `json:"latency_ms_p50,omitempty"`
	LatencyMsP90 float64 `json:"latency_ms_p90,omitempty"`
	LatencyMsP99 float64 `json:"latency_ms_p99,omitempty"`

	// Attack efficacy: test Q-error before and after poisoning, and
	// their mean ratio (after/before — the "mean degradation" headline).
	QErrBefore  *metrics.Summary `json:"qerr_before,omitempty"`
	QErrAfter   *metrics.Summary `json:"qerr_after,omitempty"`
	Degradation float64          `json:"degradation,omitempty"`

	// Wire accounting of remote cells (body bytes, headers excluded).
	WireBytesOut int64 `json:"wire_bytes_out,omitempty"`
	WireBytesIn  int64 `json:"wire_bytes_in,omitempty"`

	// Load/capacity accounting. Offered counts planned arrivals
	// (Sent + client-side drops); per-SLO-class splits of workload-shaped
	// cells land in Extra as class_<name>_* columns.
	Offered       int64 `json:"offered,omitempty"`
	Sent          int64 `json:"sent,omitempty"`
	OK            int64 `json:"ok,omitempty"`
	Shed          int64 `json:"shed_429,omitempty"`
	Errors        int64 `json:"errors,omitempty"`
	ClientDropped int64 `json:"client_dropped,omitempty"`
	TenantsHosted int   `json:"tenants_hosted,omitempty"`

	// Extra carries numeric metrics that have no first-class column —
	// chiefly legacy imports (ns_per_op maps, codec microbenchmarks).
	Extra map[string]float64 `json:"extra,omitempty"`
	// Notes is free-form context (legacy descriptions, environment).
	Notes string `json:"notes,omitempty"`
}

// Key is the identity Compare diffs on.
func (r Record) Key() string { return r.Suite + "/" + r.Cell }

// Validate checks the invariants every record must satisfy before it
// enters a trajectory.
func (r Record) Validate() error {
	if r.Suite == "" || r.Cell == "" {
		return fmt.Errorf("bench: record needs suite and cell (got %q/%q)", r.Suite, r.Cell)
	}
	switch r.Kind {
	case "attack", "load", "capacity", "imported":
	default:
		return fmt.Errorf("bench: record %s has unknown kind %q", r.Key(), r.Kind)
	}
	if r.WallSec < 0 || r.Throughput < 0 || r.Degradation < 0 {
		return fmt.Errorf("bench: record %s carries a negative metric", r.Key())
	}
	if r.Kind == "attack" && r.Degradation == 0 {
		return fmt.Errorf("bench: attack record %s has no degradation", r.Key())
	}
	return nil
}

// Trajectory is the whole BENCH.json file: a schema tag plus the
// append-only record log.
type Trajectory struct {
	Schema  int      `json:"schema"`
	Records []Record `json:"records"`
}

// NewTrajectory returns an empty trajectory at the current schema.
func NewTrajectory() *Trajectory { return &Trajectory{Schema: SchemaVersion} }

// Append validates and appends records.
func (t *Trajectory) Append(recs ...Record) error {
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			return err
		}
		t.Records = append(t.Records, r)
	}
	return nil
}

// Latest reduces the log to the most recent record per cell key,
// preserving first-appearance order of the keys.
func (t *Trajectory) Latest() []Record {
	idx := make(map[string]int)
	var out []Record
	for _, r := range t.Records {
		if i, ok := idx[r.Key()]; ok {
			out[i] = r
			continue
		}
		idx[r.Key()] = len(out)
		out = append(out, r)
	}
	return out
}

// LoadTrajectory reads a BENCH.json. A missing file is an empty
// trajectory (first run appends to nothing); a schema mismatch is an
// error.
func LoadTrajectory(path string) (*Trajectory, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewTrajectory(), nil
	}
	if err != nil {
		return nil, err
	}
	var t Trajectory
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if t.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: %s has schema %d, this build reads %d", path, t.Schema, SchemaVersion)
	}
	for _, r := range t.Records {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", path, err)
		}
	}
	return &t, nil
}

// Save writes the trajectory atomically (tmp + rename) so a crash never
// truncates an existing BENCH.json.
func (t *Trajectory) Save(path string) error {
	raw, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
