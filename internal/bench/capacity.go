package bench

import (
	"context"
	"fmt"
	"time"

	"pace/internal/experiments"
	"pace/internal/loadgen"
	"pace/internal/remote"
	"pace/internal/router"
	"pace/internal/targetserver"
	"pace/internal/tenant"
	"pace/internal/wire"
	"pace/internal/workload"
)

// capacityCell sweeps fleet capacity: for each node count it boots that
// many in-process paced backends behind a pacerouter, provisions one
// tenant per node, offers each tenant the cell's rate concurrently, and
// records tenants hosted plus aggregate admitted throughput. The sweep
// is self-contained — it ignores Options.TargetURL and builds its own
// fleet, so the 1→2→4 scaling row is reproducible anywhere.
func (r *runner) capacityCell(ctx context.Context, c Cell, off int64) ([]Record, error) {
	model := c.Model
	if model == "" {
		model = "linear"
	}
	ds := c.Dataset
	if ds == "" {
		ds = "dmv"
	}
	qps := c.QPS
	if qps <= 0 {
		qps = 150
	}
	dur := time.Duration(c.DurationSec * float64(time.Second))
	if dur <= 0 {
		dur = 4 * time.Second
	}

	// A workload-shaped sweep plans one stream and offers it to every
	// tenant lane — per-lane firing identities keep the server's view
	// per-client, and equal plans keep the scaling row comparable.
	var sched *loadgen.Schedule
	if c.Workload != "" {
		w, err := r.world(ds)
		if err != nil {
			return nil, err
		}
		wc := c
		wc.QPS = qps
		sched, err = r.cellSchedule(wc, w, off, dur)
		if err != nil {
			return nil, err
		}
	}

	var out []Record
	for _, n := range c.Nodes {
		if n <= 0 {
			return nil, fmt.Errorf("bench: capacity cell %q has node count %d", c.ID(), n)
		}
		rec, err := r.capacityPoint(ctx, c, ds, model, n, qps, dur, sched)
		if err != nil {
			return out, fmt.Errorf("nodes=%d: %w", n, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

func (r *runner) capacityPoint(ctx context.Context, c Cell, ds, model string, n int, qps float64, dur time.Duration, sched *loadgen.Schedule) (Record, error) {
	factory := experiments.TenantFactory(r.cfg)

	var urls []string
	var servers []*targetserver.Server
	defer func() {
		for _, srv := range servers {
			srv.Close() //nolint:errcheck
		}
	}()
	for i := 0; i < n; i++ {
		scfg := targetserver.Config{Factory: factory}
		srv := targetserver.NewMulti(tenant.NewRegistry(scfg.Factory, scfg.TenantConfig()), scfg)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return Record{}, err
		}
		servers = append(servers, srv)
		urls = append(urls, "http://"+addr)
	}
	rt, err := router.New(router.Config{Backends: urls})
	if err != nil {
		return Record{}, err
	}
	raddr, err := rt.Start("127.0.0.1:0")
	if err != nil {
		return Record{}, err
	}
	defer rt.Close() //nolint:errcheck
	rurl := "http://" + raddr

	// One tenant per node: fleet capacity is claimed in tenants hosted
	// and aggregate admitted throughput, both of which should scale
	// linearly while per-tenant latency stays flat.
	client, err := remote.NewClient(rurl, remote.Options{
		ClientID: "pacebench-capacity", CoalesceWindow: -1,
	})
	if err != nil {
		return Record{}, err
	}
	defer client.Close()
	admin := client.Admin()
	w, err := r.world(ds)
	if err != nil {
		return Record{}, err
	}
	var lanes []loadgen.Lane
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("cap-%d-%d", n, i)
		if _, err := admin.CreateTarget(ctx, wire.TargetSpec{
			ID: id, Dataset: ds, Model: model,
			Seed: r.cfg.Seed, SeedOffset: int64(i + 1), Scale: r.cfg.Scale,
		}); err != nil {
			return Record{}, fmt.Errorf("provisioning %s: %w", id, err)
		}
		t := client.Target(id)
		lane := loadgen.Lane{
			Target:  id,
			Est:     t.EstimateContext,
			Stats:   t.Stats,
			Queries: workload.Queries(w.Test),
			Config:  loadgen.Config{QPS: qps, Duration: dur},
		}
		if sched != nil {
			lane.Schedule = sched
			lane.FireAs, lane.Stats = fireVia(client, id, t)
		}
		lanes = append(lanes, lane)
	}

	start := time.Now()
	ledger := loadgen.RunLanes(ctx, lanes)
	agg := ledger.Aggregate()

	rec := Record{
		Cell:    fmt.Sprintf("%s-nodes-%d", c.ID(), n),
		Kind:    "capacity",
		Seed:    r.cfg.Seed,
		Dataset: ds, Model: model, Codec: agg.Codec,
		Workload:      c.Workload,
		Nodes:         n,
		TenantsHosted: n,
		WallSec:       time.Since(start).Seconds(),
		Throughput:    agg.AchievedQPS,
		LatencyMsP50:  agg.LatencyMsP50,
		LatencyMsP90:  agg.LatencyMsP90,
		LatencyMsP99:  agg.LatencyMsP99,
		Offered:       agg.Offered,
		Sent:          agg.Sent,
		OK:            agg.OK,
		Shed:          agg.Shed,
		Errors:        agg.Errors + agg.Unavailable + agg.Invalid,
		ClientDropped: agg.ClientDropped,
		WireBytesOut:  agg.WireBytesOut,
		WireBytesIn:   agg.WireBytesIn,
		Extra:         classColumns(agg),
	}
	return rec, nil
}
