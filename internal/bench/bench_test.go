package bench

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pace/internal/experiments"
	"pace/internal/router"
	"pace/internal/targetserver"
	"pace/internal/tenant"
)

func attackRecord(cell string, thr, deg float64) Record {
	return Record{
		Suite: "s", Cell: cell, Kind: "attack",
		WallSec: 1, Throughput: thr, Degradation: deg,
	}
}

func TestRecordValidate(t *testing.T) {
	ok := attackRecord("a", 100, 1.5)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	cases := map[string]Record{
		"missing suite":   {Cell: "a", Kind: "load"},
		"missing cell":    {Suite: "s", Kind: "load"},
		"unknown kind":    {Suite: "s", Cell: "a", Kind: "weird"},
		"negative wall":   {Suite: "s", Cell: "a", Kind: "load", WallSec: -1},
		"attack w/o deg":  {Suite: "s", Cell: "a", Kind: "attack", WallSec: 1},
		"negative thrput": {Suite: "s", Cell: "a", Kind: "load", Throughput: -3},
	}
	for name, rec := range cases {
		if err := rec.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestTrajectoryAppendAndDiff(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH.json")

	// A missing file loads as an empty trajectory.
	tr, err := LoadTrajectory(path)
	if err != nil {
		t.Fatalf("load missing: %v", err)
	}
	if tr.Schema != SchemaVersion || len(tr.Records) != 0 {
		t.Fatalf("missing file should load empty at current schema, got %+v", tr)
	}

	r1 := attackRecord("a", 100, 2.0)
	r2 := attackRecord("b", 50, 1.2)
	if err := tr.Append(r1, r2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(Record{Suite: "s", Cell: "bad", Kind: "nope"}); err == nil {
		t.Fatal("append of an invalid record should fail")
	}
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}

	// Append-and-diff: a later run of cell "a" supersedes in Latest but
	// the log keeps both.
	tr2, err := LoadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.Append(attackRecord("a", 110, 2.1)); err != nil {
		t.Fatal(err)
	}
	if err := tr2.Save(path); err != nil {
		t.Fatal(err)
	}
	tr3, err := LoadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr3.Records) != 3 {
		t.Fatalf("log should keep all appends, got %d records", len(tr3.Records))
	}
	latest := tr3.Latest()
	if len(latest) != 2 {
		t.Fatalf("latest should have one record per cell, got %d", len(latest))
	}
	if latest[0].Cell != "a" || latest[0].Throughput != 110 {
		t.Fatalf("latest[0] should be the superseding run of a, got %+v", latest[0])
	}
	if latest[1].Cell != "b" {
		t.Fatalf("latest should preserve first-appearance order, got %+v", latest[1])
	}

	// Schema mismatch refuses to load.
	if err := os.WriteFile(path, []byte(`{"schema":99,"records":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrajectory(path); err == nil {
		t.Fatal("schema mismatch should refuse to load")
	}
}

func traj(recs ...Record) *Trajectory {
	t := NewTrajectory()
	t.Records = append(t.Records, recs...)
	return t
}

func TestCompareIdenticalPasses(t *testing.T) {
	old := traj(attackRecord("a", 100, 2.0), attackRecord("b", 50, 1.2))
	rep := Compare(old, traj(old.Records...), Tolerance{Speed: 0.1, Efficacy: 0.1})
	if rep.Regressed() {
		t.Fatalf("identical trajectories should pass, got %+v", rep.Regressions)
	}
	if rep.Compared != 2 {
		t.Fatalf("compared = %d, want 2", rep.Compared)
	}
}

func TestCompareThroughputRegression(t *testing.T) {
	// The acceptance criterion: an injected 20% throughput drop fails a
	// 10% gate.
	old := traj(attackRecord("a", 100, 2.0))
	slow := traj(attackRecord("a", 80, 2.0))
	rep := Compare(old, slow, Tolerance{Speed: 0.1, Efficacy: 0.1})
	if !rep.Regressed() {
		t.Fatal("20% throughput drop should fail a 10% gate")
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0].Metric != "throughput_qps" {
		t.Fatalf("expected one throughput regression, got %+v", rep.Regressions)
	}
	// The same drop passes a 25% gate.
	if rep := Compare(old, slow, Tolerance{Speed: 0.25, Efficacy: 0.1}); rep.Regressed() {
		t.Fatalf("20%% drop should pass a 25%% gate, got %+v", rep.Regressions)
	}
}

func TestCompareWallTimeFallback(t *testing.T) {
	// Imported ns_per_op records carry wall time but no throughput: the
	// speed gate falls back to wall, where more is worse.
	mk := func(wall float64) Record {
		return Record{Suite: "legacy", Cell: "x", Kind: "imported", WallSec: wall}
	}
	rep := Compare(traj(mk(1.0)), traj(mk(1.3)), Tolerance{Speed: 0.1, Efficacy: 0.1})
	if !rep.Regressed() || rep.Regressions[0].Metric != "wall_sec" {
		t.Fatalf("30%% wall-time rise should regress on wall_sec, got %+v", rep.Regressions)
	}
	if rep := Compare(traj(mk(1.0)), traj(mk(0.7)), Tolerance{Speed: 0.1}); rep.Regressed() {
		t.Fatalf("faster wall time is not a regression, got %+v", rep.Regressions)
	}
}

func TestCompareEfficacyRegression(t *testing.T) {
	old := traj(attackRecord("a", 100, 2.0))
	weaker := traj(attackRecord("a", 100, 1.5))
	rep := Compare(old, weaker, Tolerance{Speed: 0.1, Efficacy: 0.1})
	if !rep.Regressed() || rep.Regressions[0].Metric != "degradation" {
		t.Fatalf("25%% efficacy drop should regress on degradation, got %+v", rep.Regressions)
	}
	// A negative tolerance disables the axis.
	if rep := Compare(old, weaker, Tolerance{Speed: 0.1, Efficacy: -1}); rep.Regressed() {
		t.Fatalf("disabled efficacy gate should pass, got %+v", rep.Regressions)
	}
}

func TestCompareSpeedDisabled(t *testing.T) {
	old := traj(attackRecord("a", 100, 2.0))
	slow := traj(attackRecord("a", 10, 2.0))
	if rep := Compare(old, slow, Tolerance{Speed: -1, Efficacy: 0.1}); rep.Regressed() {
		t.Fatalf("disabled speed gate should pass a 90%% drop, got %+v", rep.Regressions)
	}
}

func TestCompareMissingAndNewCells(t *testing.T) {
	old := traj(attackRecord("a", 100, 2.0), attackRecord("b", 50, 1.2))
	next := traj(attackRecord("a", 100, 2.0), attackRecord("c", 70, 1.1))
	rep := Compare(old, next, Tolerance{Speed: 0.1, Efficacy: 0.1})
	if !rep.Regressed() {
		t.Fatal("a silently dropped cell should fail the gate")
	}
	if len(rep.MissingNew) != 1 || rep.MissingNew[0] != "s/b" {
		t.Fatalf("MissingNew = %v, want [s/b]", rep.MissingNew)
	}
	if len(rep.OnlyNew) != 1 || rep.OnlyNew[0] != "s/c" {
		t.Fatalf("OnlyNew = %v, want [s/c]", rep.OnlyNew)
	}
}

func TestImportLegacy(t *testing.T) {
	// The importer's contract is against the repository's real legacy
	// files, not fixtures.
	for _, name := range []string{"BENCH_parallel.json", "BENCH_obs.json", "BENCH_remote.json"} {
		path := filepath.Join("..", "..", name)
		if _, err := os.Stat(path); err != nil {
			t.Skipf("legacy file %s not present: %v", name, err)
		}
		recs, err := ImportLegacy(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(recs) == 0 {
			t.Fatalf("%s: no records extracted", name)
		}
		prefix := strings.TrimPrefix(strings.TrimSuffix(strings.ToLower(name), ".json"), "bench_")
		for _, r := range recs {
			if r.Suite != "legacy" || r.Kind != "imported" {
				t.Fatalf("%s: record %q should be legacy/imported, got %s/%s", name, r.Cell, r.Suite, r.Kind)
			}
			if !strings.HasPrefix(r.Cell, prefix+"/") {
				t.Fatalf("%s: record cell %q should start with %q", name, r.Cell, prefix+"/")
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		// Imports are deterministic: a second pass yields the same cells
		// in the same order.
		again, err := ImportLegacy(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := range recs {
			if recs[i].Cell != again[i].Cell {
				t.Fatalf("%s: import order not deterministic at %d: %q vs %q",
					name, i, recs[i].Cell, again[i].Cell)
			}
		}
	}
}

// tinySuite is a seconds-scale profile exercising the full record path.
func tinySuite() Suite {
	return Suite{
		Name: "tiny", Seed: 1,
		Scale: 0.02, TrainQueries: 60, TestQueries: 20, Epochs: 5,
		NumPoison: 10,
		Cells: []Cell{
			{Kind: "attack", Dataset: "dmv", Model: "linear", Method: "random"},
			{Kind: "load", Dataset: "dmv", Model: "linear", QPS: 200, DurationSec: 0.5},
		},
	}
}

func TestRunSuiteInProcess(t *testing.T) {
	recs, err := RunSuite(context.Background(), tinySuite(), Options{GitRev: "test", When: "now"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	atk, load := recs[0], recs[1]
	if atk.Kind != "attack" || atk.Degradation <= 0 || atk.QErrBefore == nil || atk.QErrAfter == nil {
		t.Fatalf("attack record incomplete: %+v", atk)
	}
	if atk.Throughput <= 0 || atk.WallSec <= 0 || atk.Codec != "local" {
		t.Fatalf("attack record missing speed columns: %+v", atk)
	}
	if load.Kind != "load" || load.OK == 0 || load.Throughput <= 0 {
		t.Fatalf("load record incomplete: %+v", load)
	}
	for _, r := range recs {
		if r.Suite != "tiny" || r.GitRev != "test" || r.When != "now" {
			t.Fatalf("provenance stamp missing: %+v", r)
		}
	}

	// Determinism: a second run's efficacy columns are bit-identical.
	recs2, err := RunSuite(context.Background(), tinySuite(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if recs2[0].Degradation != atk.Degradation {
		t.Fatalf("degradation not deterministic: %v vs %v", recs2[0].Degradation, atk.Degradation)
	}
}

// bootFleet starts n in-process paced backends behind a pacerouter whose
// tenant factory runs the given profile, returning the router URL.
func bootFleet(t *testing.T, cfg experiments.Config, n int) string {
	t.Helper()
	factory := experiments.TenantFactory(cfg)
	var urls []string
	for i := 0; i < n; i++ {
		scfg := targetserver.Config{Factory: factory}
		srv := targetserver.NewMulti(tenant.NewRegistry(scfg.Factory, scfg.TenantConfig()), scfg)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() }) //nolint:errcheck
		urls = append(urls, "http://"+addr)
	}
	rt, err := router.New(router.Config{Backends: urls})
	if err != nil {
		t.Fatal(err)
	}
	raddr, err := rt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() }) //nolint:errcheck
	return "http://" + raddr
}

func TestRunSuiteAgainstLiveFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("live-fleet run in -short mode")
	}
	s := tinySuite()
	url := bootFleet(t, s.Config(0), 2)

	recs, err := RunSuite(context.Background(), s, Options{TargetURL: url})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	atk, load := recs[0], recs[1]
	if atk.Codec != "binary" || load.Codec != "binary" {
		t.Fatalf("remote cells should record the wire codec, got %q/%q", atk.Codec, load.Codec)
	}
	if atk.WireBytesOut <= 0 || atk.WireBytesIn <= 0 {
		t.Fatalf("remote attack cell should count wire bytes: %+v", atk)
	}
	if load.OK == 0 || load.WireBytesIn <= 0 {
		t.Fatalf("remote load cell should serve traffic over the wire: %+v", load)
	}
	if err := atk.Validate(); err != nil {
		t.Fatal(err)
	}

	// Cross-process bit-identity: the fleet-hosted victim's efficacy
	// equals the in-process run's.
	local, err := RunSuite(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if local[0].Degradation != atk.Degradation {
		t.Fatalf("remote degradation %v != local %v", atk.Degradation, local[0].Degradation)
	}
}

func TestCapacityCell(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity sweep in -short mode")
	}
	s := Suite{
		Name: "cap", Seed: 1,
		Scale: 0.02, TrainQueries: 60, TestQueries: 20, Epochs: 5, NumPoison: 10,
		Cells: []Cell{
			{Kind: "capacity", Dataset: "dmv", Model: "linear",
				QPS: 100, DurationSec: 0.5, Nodes: []int{1, 2}},
		},
	}
	recs, err := RunSuite(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("capacity sweep should emit one record per fleet size, got %d", len(recs))
	}
	for i, want := range []int{1, 2} {
		r := recs[i]
		if r.Kind != "capacity" || r.Nodes != want || r.TenantsHosted != want {
			t.Fatalf("record %d: want nodes=tenants=%d, got %+v", i, want, r)
		}
		if r.OK == 0 || r.Throughput <= 0 {
			t.Fatalf("record %d served nothing: %+v", i, r)
		}
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Two nodes host twice the tenants and sweep at twice the offered
	// rate; admitted throughput should scale up, not collapse.
	if recs[1].Throughput < recs[0].Throughput {
		t.Fatalf("aggregate throughput fell when scaling 1->2 nodes: %v -> %v",
			recs[0].Throughput, recs[1].Throughput)
	}
	if recs[1].Sent <= recs[0].Sent {
		t.Fatalf("2-node sweep should offer more load: %d vs %d", recs[1].Sent, recs[0].Sent)
	}
}

func TestBuiltinSuitesValidate(t *testing.T) {
	for _, name := range []string{"smoke", "quick", "capacity"} {
		s, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("built-in %s: %v", name, err)
		}
	}
	if _, err := Builtin("nope"); err == nil {
		t.Fatal("unknown built-in should error")
	}
}

// TestWorkloadLoadCell: a load cell with a workload spec replays the
// planned bursty stream instead of the uniform loop, and the record
// carries the arrival ledger plus per-SLO-class columns.
func TestWorkloadLoadCell(t *testing.T) {
	s := Suite{
		Name: "wl", Seed: 1,
		Scale: 0.02, TrainQueries: 60, TestQueries: 20, Epochs: 5, NumPoison: 10,
		Cells: []Cell{
			{Kind: "load", Dataset: "dmv", Model: "linear", QPS: 200, DurationSec: 2, Workload: "bursty"},
		},
	}
	recs, err := RunSuite(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := recs[0]
	if rec.Workload != "bursty" || !strings.Contains(rec.Cell, "bursty") {
		t.Fatalf("workload coordinate missing: %+v", rec)
	}
	if rec.Offered == 0 || rec.Offered != rec.Sent+rec.ClientDropped {
		t.Fatalf("arrival ledger broken: offered %d sent %d dropped %d",
			rec.Offered, rec.Sent, rec.ClientDropped)
	}
	// The bursty profile's gold/bronze splits must surface as columns.
	for _, k := range []string{"class_gold_latency_ms_p99", "class_gold_shed_fraction", "class_gold_offered"} {
		if _, ok := rec.Extra[k]; !ok {
			t.Errorf("class column %s missing from %v", k, rec.Extra)
		}
	}

	// Same suite, same seed: the planned stream is identical, so the
	// offered count is bit-identical across runs.
	recs2, err := RunSuite(context.Background(), s, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if recs2[0].Offered != rec.Offered {
		t.Fatalf("planned arrivals not deterministic: %d vs %d (workers=4)",
			recs2[0].Offered, rec.Offered)
	}
}
