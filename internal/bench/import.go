package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ImportLegacy converts one of the repository's pre-unification bench
// files (BENCH_parallel.json, BENCH_obs.json, BENCH_remote.json) into
// unified-schema records under the "legacy" suite, so their numbers
// live in the same trajectory as new runs. The original files are left
// untouched — this is a read-only migration.
func ImportLegacy(path string) ([]Record, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	prefix := strings.ToLower(strings.TrimSuffix(filepath.Base(path), ".json"))
	prefix = strings.TrimPrefix(prefix, "bench_")

	var recs []Record
	switch {
	case doc["runs"] != nil:
		recs, err = importRemote(prefix, doc)
	case hasNsPerOpSection(doc):
		recs, err = importNsPerOp(prefix, doc)
	default:
		return nil, fmt.Errorf("bench: %s: unrecognized legacy bench layout", path)
	}
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("bench: %s: no records extracted", path)
	}
	for i := range recs {
		recs[i].Suite = "legacy"
		recs[i].Kind = "imported"
		if err := recs[i].Validate(); err != nil {
			return nil, err
		}
	}
	return recs, nil
}

func hasNsPerOpSection(doc map[string]any) bool {
	for _, v := range doc {
		if sec, ok := v.(map[string]any); ok {
			if _, ok := sec["ns_per_op"].(map[string]any); ok {
				return true
			}
		}
	}
	return false
}

// sortedKeys makes map iteration deterministic so imports are
// byte-stable run to run.
func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// importNsPerOp handles BENCH_parallel.json and BENCH_obs.json: every
// section carrying an ns_per_op map becomes one record per variant,
// with wall time as the first-class speed column and every other
// numeric leaf of the section preserved in Extra.
func importNsPerOp(prefix string, doc map[string]any) ([]Record, error) {
	var recs []Record
	for _, section := range sortedKeys(doc) {
		sec, ok := doc[section].(map[string]any)
		if !ok {
			continue
		}
		nsMap, ok := sec["ns_per_op"].(map[string]any)
		if !ok {
			continue
		}
		note, _ := sec["config"].(string)
		for _, variant := range sortedKeys(nsMap) {
			ns, ok := nsMap[variant].(float64)
			if !ok {
				continue
			}
			recs = append(recs, Record{
				Cell:    prefix + "/" + section + "/" + sanitize(variant),
				WallSec: ns / 1e9,
				Extra:   map[string]float64{"ns_per_op": ns},
				Notes:   note,
			})
		}
	}
	return recs, nil
}

// importRemote handles BENCH_remote.json: every load report under
// "runs" (recursively — two_tenant_overload_2x nests per-tenant
// reports) becomes a load-shaped record, and the codec_v2 section's
// wire measurements and microbenchmarks come along.
func importRemote(prefix string, doc map[string]any) ([]Record, error) {
	var recs []Record
	runs, _ := doc["runs"].(map[string]any)
	var walk func(name string, node map[string]any)
	walk = func(name string, node map[string]any) {
		if _, isReport := node["target_qps"]; isReport {
			recs = append(recs, reportRecord(prefix+"/"+name, node))
			return
		}
		for _, k := range sortedKeys(node) {
			if child, ok := node[k].(map[string]any); ok {
				walk(name+"/"+k, child)
			}
		}
	}
	for _, k := range sortedKeys(runs) {
		if node, ok := runs[k].(map[string]any); ok {
			walk(k, node)
		}
	}

	if codec, ok := doc["codec_v2"].(map[string]any); ok {
		if lw, ok := codec["loadgen_wire_bytes"].(map[string]any); ok {
			for _, name := range sortedKeys(lw) {
				run, ok := lw[name].(map[string]any)
				if !ok {
					continue
				}
				rec := Record{
					Cell:         prefix + "/codec_v2/loadgen/" + name,
					Codec:        name,
					OK:           int64(num(run, "ok")),
					WireBytesOut: int64(num(run, "bytes_out")),
					WireBytesIn:  int64(num(run, "bytes_in")),
					LatencyMsP50: num(run, "latency_ms_p50"),
					LatencyMsP99: num(run, "latency_ms_p99"),
				}
				recs = append(recs, rec)
			}
		}
		micro := Record{Cell: prefix + "/codec_v2/microbench", Extra: map[string]float64{}}
		for _, section := range []string{"estimate_batch_bytes", "encode_ns_per_op", "decode_ns_per_op"} {
			if m, ok := codec[section].(map[string]any); ok {
				for _, k := range sortedKeys(m) {
					if v, ok := m[k].(float64); ok {
						micro.Extra[section+"/"+k] = v
					}
				}
			}
		}
		if len(micro.Extra) > 0 {
			recs = append(recs, micro)
		}
	}
	return recs, nil
}

// reportRecord maps a legacy loadgen report object onto the unified
// load columns.
func reportRecord(cell string, run map[string]any) Record {
	return Record{
		Cell:         cell,
		WallSec:      num(run, "duration_sec"),
		Throughput:   num(run, "achieved_qps"),
		LatencyMsP50: num(run, "latency_ms_p50"),
		LatencyMsP90: num(run, "latency_ms_p90"),
		LatencyMsP99: num(run, "latency_ms_p99"),
		Sent:         int64(num(run, "sent")),
		OK:           int64(num(run, "ok")),
		Shed:         int64(num(run, "shed_429")),
		Errors:       int64(num(run, "errors")),
	}
}

func num(m map[string]any, key string) float64 {
	v, _ := m[key].(float64)
	return v
}

// sanitize keeps legacy variant labels ("workers=1", "miss (cold
// cache)") readable as cell-name segments.
func sanitize(s string) string {
	s = strings.ReplaceAll(s, " ", "_")
	s = strings.ReplaceAll(s, "(", "")
	s = strings.ReplaceAll(s, ")", "")
	return s
}
