package bench

import (
	"fmt"
	"io"
	"sort"
)

// Tolerance is the regression gate's slack, as fractions of the old
// value: Speed guards throughput and wall time (machine-bound, noisy —
// CI uses a wide tolerance or disables it across machines), Efficacy
// guards attack degradation (seed-deterministic — a tight tolerance
// holds across machines). A negative field disables that gate.
type Tolerance struct {
	Speed    float64
	Efficacy float64
}

// Regression is one gated metric that moved the wrong way.
type Regression struct {
	Cell   string  `json:"cell"`
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Change is the relative move, negative when the metric got worse.
	Change float64 `json:"change"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.4g -> %.4g (%+.1f%%)", r.Cell, r.Metric, r.Old, r.New, 100*r.Change)
}

// CompareReport is the outcome of diffing two trajectories.
type CompareReport struct {
	// Regressions are the gate violations; non-empty fails the gate.
	Regressions []Regression
	// Compared counts cells present in both trajectories.
	Compared int
	// MissingNew lists cells the old trajectory has but the new lacks —
	// a silently dropped benchmark also fails the gate.
	MissingNew []string
	// OnlyNew lists cells that appear for the first time (informational).
	OnlyNew []string
}

// Regressed reports whether the gate fails.
func (r *CompareReport) Regressed() bool {
	return len(r.Regressions) > 0 || len(r.MissingNew) > 0
}

// Print renders the report for humans.
func (r *CompareReport) Print(w io.Writer) {
	fmt.Fprintf(w, "compared %d cells\n", r.Compared)
	for _, m := range r.MissingNew {
		fmt.Fprintf(w, "MISSING  %s (present in old, absent in new)\n", m)
	}
	for _, reg := range r.Regressions {
		fmt.Fprintf(w, "REGRESSED %s\n", reg)
	}
	for _, c := range r.OnlyNew {
		fmt.Fprintf(w, "new cell %s\n", c)
	}
	if !r.Regressed() {
		fmt.Fprintln(w, "no regressions")
	}
}

// Compare diffs the latest record per cell between two trajectories
// under the tolerance. Speed regresses when throughput falls (or, for
// cells without a throughput column, wall time rises) by more than
// tol.Speed; efficacy regresses when attack degradation falls by more
// than tol.Efficacy. Imported records gate on whatever first-class
// columns they carry.
func Compare(old, new *Trajectory, tol Tolerance) *CompareReport {
	oldByKey := make(map[string]Record)
	for _, r := range old.Latest() {
		oldByKey[r.Key()] = r
	}
	newByKey := make(map[string]Record)
	var newOrder []string
	for _, r := range new.Latest() {
		if _, ok := newByKey[r.Key()]; !ok {
			newOrder = append(newOrder, r.Key())
		}
		newByKey[r.Key()] = r
	}

	rep := &CompareReport{}
	for _, key := range newOrder {
		nr := newByKey[key]
		or, ok := oldByKey[key]
		if !ok {
			rep.OnlyNew = append(rep.OnlyNew, key)
			continue
		}
		rep.Compared++
		if tol.Speed >= 0 {
			switch {
			case or.Throughput > 0 && nr.Throughput > 0:
				if change := nr.Throughput/or.Throughput - 1; change < -tol.Speed {
					rep.Regressions = append(rep.Regressions, Regression{
						Cell: key, Metric: "throughput_qps",
						Old: or.Throughput, New: nr.Throughput, Change: change,
					})
				}
			case or.WallSec > 0 && nr.WallSec > 0:
				// Wall time: more is worse, so the change sign flips.
				if change := or.WallSec/nr.WallSec - 1; change < -tol.Speed {
					rep.Regressions = append(rep.Regressions, Regression{
						Cell: key, Metric: "wall_sec",
						Old: or.WallSec, New: nr.WallSec, Change: change,
					})
				}
			}
		}
		if tol.Efficacy >= 0 && or.Degradation > 0 && nr.Degradation > 0 {
			if change := nr.Degradation/or.Degradation - 1; change < -tol.Efficacy {
				rep.Regressions = append(rep.Regressions, Regression{
					Cell: key, Metric: "degradation",
					Old: or.Degradation, New: nr.Degradation, Change: change,
				})
			}
		}
	}
	for key := range oldByKey {
		if _, ok := newByKey[key]; !ok {
			rep.MissingNew = append(rep.MissingNew, key)
		}
	}
	sort.Strings(rep.MissingNew)
	return rep
}
