package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pace/internal/experiments"
	"pace/internal/loadgen"
	"pace/internal/query"
	"pace/internal/remote"
	"pace/internal/workload"
	"pace/internal/workloadgen"
)

// Workload-shaped cells: a load or capacity cell with a Workload field
// replaces the uniform open loop with a planned workloadgen stream —
// skew-rated clients, bursty arrivals, SLO classes — offered at the
// cell's mean rate. Because the spec's MeanQPS is overridden with the
// cell's QPS, a uniform cell and a bursty cell at the same QPS compare
// equal-mean offered load with different peaks, which is exactly the
// uniform-vs-bursty row BENCH_remote.json carries.

// cellSchedule resolves a cell's workload (built-in profile name or
// spec file) and plans its stream over the cell's duration against the
// world's test pool, with query shapes fitted from the world's
// historical workload. The seed is a pure function of (suite seed, cell
// offset), so the planned stream is bit-identical across runs and
// machines.
func (r *runner) cellSchedule(c Cell, w *experiments.World, off int64, dur time.Duration) (*loadgen.Schedule, error) {
	spec, err := workloadgen.Builtin(c.Workload)
	if err != nil {
		spec, err = workloadgen.LoadSpec(c.Workload)
		if err != nil {
			return nil, fmt.Errorf("workload %q: %w", c.Workload, err)
		}
	}
	spec.Name = c.Workload
	spec.Seed = r.cfg.Seed*rowSeedK + off
	spec.Clients.MeanQPS = c.QPS // equal-mean comparison across cells
	shapes := workloadgen.FitShapes(workload.Queries(w.History))
	return workloadgen.Generate(spec, workload.Queries(w.Test), shapes, dur, r.opts.Workers)
}

// fireVia routes planned client identities at one tenant: one routed
// target per identity (lazily; they share the pool) so the server's
// per-client buckets see the planned population. The stats func sums
// wire counters across identities.
func fireVia(rc *remote.Client, tenant string, fallback *remote.RemoteTarget) (loadgen.Fire, func() remote.Stats) {
	var (
		mu      sync.Mutex
		targets = map[string]*remote.RemoteTarget{}
	)
	fire := func(ctx context.Context, client string, q *query.Query) (float64, error) {
		if client == "" {
			return fallback.EstimateContext(ctx, q)
		}
		mu.Lock()
		rt, ok := targets[client]
		if !ok {
			rt = rc.TargetAs(tenant, client)
			targets[client] = rt
		}
		mu.Unlock()
		return rt.EstimateContext(ctx, q)
	}
	stats := func() remote.Stats {
		sum := fallback.Stats()
		mu.Lock()
		defer mu.Unlock()
		for _, rt := range targets {
			s := rt.Stats()
			sum.Requests += s.Requests
			sum.Queries += s.Queries
			sum.Coalesced += s.Coalesced
			sum.Overloaded += s.Overloaded
			sum.Invalid += s.Invalid
			sum.Unavailable += s.Unavailable
			sum.BytesOut += s.BytesOut
			sum.BytesIn += s.BytesIn
			if s.Codec != sum.Codec {
				sum.Codec = s.Codec // a downgraded identity taints the lane
			}
		}
		return sum
	}
	return fire, stats
}

// classColumns flattens a report's per-SLO-class splits into Extra
// columns (class_<name>_latency_ms_p99, class_<name>_shed_fraction and
// class_<name>_offered), so trajectory diffs and jq one-liners see the
// class ledgers without a schema change.
func classColumns(rep loadgen.Report) map[string]float64 {
	if len(rep.Classes) == 0 {
		return nil
	}
	out := make(map[string]float64, 3*len(rep.Classes))
	for name, c := range rep.Classes {
		out["class_"+name+"_offered"] = float64(c.Offered)
		out["class_"+name+"_latency_ms_p99"] = c.LatencyMsP99
		out["class_"+name+"_shed_fraction"] = c.ShedFraction
	}
	return out
}
