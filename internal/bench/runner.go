package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"
	"time"

	"pace/internal/ce"
	"pace/internal/core"
	"pace/internal/experiments"
	"pace/internal/faults"
	"pace/internal/loadgen"
	"pace/internal/metrics"
	"pace/internal/obs"
	"pace/internal/query"
	"pace/internal/remote"
	"pace/internal/wire"
	"pace/internal/workload"
)

// rowSeedK decorrelates per-cell RNG streams the way the experiments
// matrix decorrelates its rows: every cell draws its baseline poison
// from a private rng seeded by (suite seed, constant, cell offset).
const rowSeedK int64 = 86028121

// Options shapes one suite run.
type Options struct {
	// TargetURL, when set, runs attack and load cells against a live
	// fleet (paced or pacerouter) at this base URL: each cell provisions
	// its own tenant over the admin API and tears it down. Empty runs
	// everything in-process.
	TargetURL string
	// AuthToken authenticates against a fleet running -auth-tokens.
	AuthToken string
	// Workers bounds campaign parallelism (0 serial; results are
	// bit-identical at any setting).
	Workers int
	// GitRev and When stamp every record's provenance.
	GitRev string
	When   string
	// Log, when set, receives one progress line per cell.
	Log io.Writer
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// countingTarget wraps any ce.Target with the harness's uniform
// measurement: estimate-call latency lands in an obs histogram, and the
// call/query counts behind the throughput column are tracked atomically.
type countingTarget struct {
	inner     ce.Target
	hist      *obs.Histogram
	estimates atomic.Int64
	executed  atomic.Int64
}

func (t *countingTarget) EstimateContext(ctx context.Context, q *query.Query) (float64, error) {
	t0 := time.Now()
	v, err := t.inner.EstimateContext(ctx, q)
	t.hist.Observe(time.Since(t0).Seconds())
	t.estimates.Add(1)
	return v, err
}

func (t *countingTarget) ExecuteWorkload(ctx context.Context, qs []*query.Query, cards []float64) error {
	err := t.inner.ExecuteWorkload(ctx, qs, cards)
	if err == nil {
		t.executed.Add(int64(len(qs)))
	}
	return err
}

// calls is the total target interactions the throughput column counts.
func (t *countingTarget) calls() int64 { return t.estimates.Load() + t.executed.Load() }

// latencyMs reads the bucketed percentile estimates out of the
// histogram, in milliseconds.
func (t *countingTarget) latencyMs(q float64) float64 { return t.hist.Quantile(q) * 1e3 }

// runner carries the per-suite state: the resolved profile and the
// world cache (one world per dataset — cells of the same dataset share
// the materialized tables and workloads).
type runner struct {
	suite  Suite
	cfg    experiments.Config
	opts   Options
	worlds map[string]*experiments.World
}

// Config maps the suite's profile knobs onto the experiments package.
func (s Suite) Config(workers int) experiments.Config {
	return experiments.Config{
		Seed:         s.Seed,
		Scale:        s.Scale,
		TrainQueries: s.TrainQueries,
		TestQueries:  s.TestQueries,
		Epochs:       s.Epochs,
		Inner:        s.Inner,
		Outer:        s.Outer,
		NumPoison:    s.NumPoison,
		Workers:      workers,
	}.WithDefaults()
}

// RunSuite executes every cell of the suite and returns one record per
// measurement (capacity cells emit one record per fleet size). Cell
// seeds are pure functions of the suite seed and the cell's position,
// so two runs of the same suite are directly comparable — attack
// efficacy is bit-identical across machines, speed is not.
func RunSuite(ctx context.Context, s Suite, opts Options) ([]Record, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	r := &runner{suite: s, cfg: s.Config(opts.Workers), opts: opts,
		worlds: make(map[string]*experiments.World)}

	var out []Record
	for i, c := range s.Cells {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		start := time.Now()
		var (
			recs []Record
			err  error
		)
		switch c.Kind {
		case "attack":
			var rec Record
			rec, err = r.attackCell(ctx, c, int64(i+1))
			recs = []Record{rec}
		case "load":
			var rec Record
			rec, err = r.loadCell(ctx, c, int64(i+1))
			recs = []Record{rec}
		case "capacity":
			recs, err = r.capacityCell(ctx, c, int64(i+1))
		}
		if err != nil {
			return out, fmt.Errorf("bench: cell %s: %w", c.ID(), err)
		}
		for j := range recs {
			recs[j].Suite = s.Name
			recs[j].GitRev = r.opts.GitRev
			recs[j].When = r.opts.When
			if err := recs[j].Validate(); err != nil {
				return out, err
			}
		}
		out = append(out, recs...)
		opts.logf("cell %-40s %8.2fs", c.ID(), time.Since(start).Seconds())
	}
	return out, nil
}

// world returns the (cached) world of a dataset.
func (r *runner) world(name string) (*experiments.World, error) {
	if w, ok := r.worlds[name]; ok {
		return w, nil
	}
	w, err := experiments.NewWorld(name, r.cfg)
	if err != nil {
		return nil, err
	}
	r.worlds[name] = w
	return w, nil
}

// provision creates a dedicated tenant for one cell at the fleet under
// test and returns its routed target plus a teardown. The tenant's
// (seed, seed offset, scale) make the server-built victim the
// bit-identical twin of the in-process one.
func (r *runner) provision(ctx context.Context, id, dataset, model, codec string, off int64) (*remote.RemoteTarget, func(), error) {
	client, err := remote.NewClient(r.opts.TargetURL, remote.Options{
		ClientID:  "pacebench",
		AuthToken: r.opts.AuthToken,
		Codec:     codec,
	})
	if err != nil {
		return nil, nil, err
	}
	admin := client.Admin()
	if _, err := admin.CreateTarget(ctx, wire.TargetSpec{
		ID: id, Dataset: dataset, Model: model,
		Seed: r.cfg.Seed, SeedOffset: off, Scale: r.cfg.Scale,
	}); err != nil {
		client.Close()
		return nil, nil, fmt.Errorf("provisioning %s: %w", id, err)
	}
	teardown := func() {
		admin.DeleteTarget(ctx, id) //nolint:errcheck // best-effort cleanup
		client.Close()
	}
	return client.Target(id), teardown, nil
}

// attackCell runs one poisoning campaign — baseline method or full
// PACE — against an in-process victim or a provisioned tenant, and
// records efficacy (before/after q-error, degradation) next to speed
// (wall, throughput, latency percentiles) and wire bytes.
func (r *runner) attackCell(ctx context.Context, c Cell, off int64) (Record, error) {
	typ, err := ce.ParseType(c.Model)
	if err != nil {
		return Record{}, err
	}
	method, err := parseMethod(c.Method)
	if err != nil {
		return Record{}, err
	}
	w, err := r.world(c.Dataset)
	if err != nil {
		return Record{}, err
	}

	rec := Record{
		Cell: c.ID(), Kind: "attack", Seed: r.cfg.Seed,
		Dataset: c.Dataset, Model: c.Model, Method: c.Method, Faults: c.Faults,
		Codec: "local",
	}
	reg := obs.NewRegistry()
	ct := &countingTarget{hist: reg.Histogram("bench_target_latency_seconds")}

	var rt *remote.RemoteTarget
	if r.opts.TargetURL == "" {
		ct.inner = w.NewBlackBox(typ, off)
	} else {
		codec := c.Codec
		if codec == "" {
			codec = "binary"
		}
		rec.Codec = codec
		id := fmt.Sprintf("bench-%s-%s", r.suite.Name, c.ID())
		target, teardown, err := r.provision(ctx, id, c.Dataset, c.Model, codec, off)
		if err != nil {
			return Record{}, err
		}
		defer teardown()
		rt, ct.inner = target, target
	}
	var wireBefore remote.Stats
	if rt != nil {
		wireBefore = rt.Stats()
	}

	qs := workload.Queries(w.Test)
	cards := experiments.Cards(w.Test)
	start := time.Now()

	beforeErrs, err := experiments.TargetQErrors(ctx, ct, qs, cards)
	if err != nil {
		return Record{}, fmt.Errorf("clean evaluation: %w", err)
	}
	before := metrics.Summarize(beforeErrs)

	var injector *faults.Injector
	if c.Faults != "" && c.Faults != "none" {
		prof, err := faults.ByName(c.Faults)
		if err != nil {
			return Record{}, err
		}
		injector = faults.NewInjector(prof, r.cfg.Seed)
	}

	if method == core.PACE {
		runCfg := core.Config{
			NumPoison: r.cfg.NumPoison,
			Workers:   r.opts.Workers,
			ForceType: &typ,
			Generator: w.GenCfg(),
			Trainer:   w.TrainerCfg(),
			Faults:    injector,
		}
		runCfg.Surrogate.Queries = r.cfg.TrainQueries
		runCfg.Surrogate.HP = w.HP()
		runCfg.Surrogate.Train = w.TrainCfg()
		campaign := &core.Campaign{
			Target:   ct,
			Workload: w.WGen,
			Test:     w.Test,
			History:  w.History,
			Config:   runCfg,
			Seed:     r.cfg.Seed + off,
		}
		if _, err := campaign.Run(ctx); err != nil {
			return Record{}, fmt.Errorf("campaign: %w", err)
		}
	} else {
		// Baseline crafts poison against a surrogate trained on the clean
		// channel; an injected fault profile perturbs only the poison
		// delivery (the update surface), mirroring a flaky production
		// feedback path.
		sur, err := w.NewSurrogateTarget(ct, typ, off)
		if err != nil {
			return Record{}, fmt.Errorf("surrogate: %w", err)
		}
		rowRng := rand.New(rand.NewSource(r.cfg.Seed*rowSeedK + off))
		pq, pc := core.CraftPoison(ctx, method, sur, w.WGen.WithRng(rowRng),
			w.GenCfg(), r.cfg.NumPoison, rowRng)
		exec := ce.Target(ct)
		if injector != nil {
			exec = injector.WrapTarget(ct)
		}
		if err := exec.ExecuteWorkload(ctx, pq, pc); err != nil {
			return Record{}, fmt.Errorf("poison delivery: %w", err)
		}
	}

	afterErrs, err := experiments.TargetQErrors(ctx, ct, qs, cards)
	if err != nil {
		return Record{}, fmt.Errorf("post-attack evaluation: %w", err)
	}
	after := metrics.Summarize(afterErrs)

	rec.WallSec = time.Since(start).Seconds()
	if rec.WallSec > 0 {
		rec.Throughput = float64(ct.calls()) / rec.WallSec
	}
	rec.LatencyMsP50 = ct.latencyMs(0.5)
	rec.LatencyMsP90 = ct.latencyMs(0.9)
	rec.LatencyMsP99 = ct.latencyMs(0.99)
	rec.QErrBefore, rec.QErrAfter = &before, &after
	if before.Mean > 0 {
		rec.Degradation = after.Mean / before.Mean
	}
	if rt != nil {
		st := rt.Stats()
		rec.WireBytesOut = st.BytesOut - wireBefore.BytesOut
		rec.WireBytesIn = st.BytesIn - wireBefore.BytesIn
	}
	return rec, nil
}

// loadCell replays the dataset's test workload at the cell's offered
// rate — a uniform open loop, or (with Workload set) a planned
// workloadgen stream at the same mean rate — and records what the
// target did with it.
func (r *runner) loadCell(ctx context.Context, c Cell, off int64) (Record, error) {
	typ, err := ce.ParseType(c.Model)
	if err != nil {
		return Record{}, err
	}
	w, err := r.world(c.Dataset)
	if err != nil {
		return Record{}, err
	}
	qs := workload.Queries(w.Test)
	lcfg := loadgen.Config{QPS: c.QPS, Duration: time.Duration(c.DurationSec * float64(time.Second))}

	rec := Record{
		Cell: c.ID(), Kind: "load", Seed: r.cfg.Seed,
		Dataset: c.Dataset, Model: c.Model, Faults: c.Faults, Codec: "local",
		Workload: c.Workload,
	}
	lane := loadgen.Lane{Target: c.ID(), Queries: qs, Config: lcfg}
	if c.Workload != "" {
		dur := lcfg.Duration
		if dur <= 0 {
			dur = 10 * time.Second
		}
		sched, err := r.cellSchedule(c, w, off, dur)
		if err != nil {
			return Record{}, err
		}
		lane.Schedule = sched
	}
	if r.opts.TargetURL == "" {
		bb := w.NewBlackBox(typ, off)
		target := ce.Target(bb)
		if c.Faults != "" && c.Faults != "none" {
			prof, err := faults.ByName(c.Faults)
			if err != nil {
				return Record{}, err
			}
			target = faults.NewInjector(prof, r.cfg.Seed).WrapTarget(bb)
		}
		lane.Est = target.EstimateContext
	} else {
		codec := c.Codec
		if codec == "" {
			codec = "binary"
		}
		rec.Codec = codec
		id := fmt.Sprintf("bench-%s-%s", r.suite.Name, c.ID())
		client, err := remote.NewClient(r.opts.TargetURL, remote.Options{
			ClientID: "pacebench-load", AuthToken: r.opts.AuthToken,
			Codec: codec, CoalesceWindow: -1, // off: one wire round trip per sample
		})
		if err != nil {
			return Record{}, err
		}
		defer client.Close()
		admin := client.Admin()
		if _, err := admin.CreateTarget(ctx, wire.TargetSpec{
			ID: id, Dataset: c.Dataset, Model: c.Model,
			Seed: r.cfg.Seed, SeedOffset: off, Scale: r.cfg.Scale,
		}); err != nil {
			return Record{}, fmt.Errorf("provisioning %s: %w", id, err)
		}
		defer admin.DeleteTarget(ctx, id) //nolint:errcheck // best-effort cleanup
		rt := client.Target(id)
		lane.Est = rt.EstimateContext
		lane.Stats = rt.Stats
		if lane.Schedule != nil {
			lane.FireAs, lane.Stats = fireVia(client, id, rt)
		}
	}

	start := time.Now()
	ledger := loadgen.RunLanes(ctx, []loadgen.Lane{lane})
	rep := ledger[c.ID()]

	rec.WallSec = time.Since(start).Seconds()
	rec.Throughput = rep.AchievedQPS
	rec.LatencyMsP50 = rep.LatencyMsP50
	rec.LatencyMsP90 = rep.LatencyMsP90
	rec.LatencyMsP99 = rep.LatencyMsP99
	rec.Offered, rec.Sent, rec.OK, rec.Shed = rep.Offered, rep.Sent, rep.OK, rep.Shed
	rec.Errors = rep.Errors + rep.Unavailable + rep.Invalid
	rec.ClientDropped = rep.ClientDropped
	rec.WireBytesOut, rec.WireBytesIn = rep.WireBytesOut, rep.WireBytesIn
	rec.Extra = classColumns(rep)
	if rep.Codec != "" {
		rec.Codec = rep.Codec
	}
	return rec, nil
}
