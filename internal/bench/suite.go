package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"pace/internal/core"
)

// Cell is one benchmark measurement in a suite: an attack campaign, a
// load run, or a fleet-capacity sweep.
type Cell struct {
	// Name uniquely identifies the cell within the suite; empty derives
	// "kind-dataset-model-method-faults-codec-workload".
	Name string `json:"name,omitempty"`
	// Kind: "attack", "load" or "capacity".
	Kind string `json:"kind"`

	// Attack/load coordinates.
	Dataset string `json:"dataset,omitempty"`
	Model   string `json:"model,omitempty"`
	// Method is an attack cell's poisoning method: random, lbs, greedy,
	// lbg or pace.
	Method string `json:"method,omitempty"`
	// Faults names an injected unreliability profile (see
	// internal/faults); empty means a reliable target.
	Faults string `json:"faults,omitempty"`
	// Codec selects the wire codec for remote runs ("binary", "json").
	// Ignored in-process, where the codec column records "local".
	Codec string `json:"codec,omitempty"`

	// Load-cell knobs.
	QPS         float64 `json:"qps,omitempty"`
	DurationSec float64 `json:"duration_sec,omitempty"`
	// Workload, when set, replaces the uniform open loop of a load or
	// capacity cell with a planned workloadgen stream (a built-in
	// profile name like "bursty" or a spec-file path), offered at the
	// cell's QPS so equal-mean cells stay comparable.
	Workload string `json:"workload,omitempty"`

	// Capacity-cell knob: the fleet sizes to sweep (e.g. [1, 2, 4]).
	Nodes []int `json:"nodes,omitempty"`
}

// ID returns the cell's unique name within its suite.
func (c Cell) ID() string {
	if c.Name != "" {
		return c.Name
	}
	parts := []string{c.Kind}
	for _, p := range []string{c.Dataset, c.Model, c.Method, c.Faults, c.Codec, c.Workload} {
		if p != "" {
			parts = append(parts, p)
		}
	}
	return strings.Join(parts, "-")
}

// Suite is a declarative benchmark specification: a seed, a profile and
// the cells to measure. The same suite at the same seed produces
// bit-identical attack-efficacy numbers on any machine — speed columns
// are machine-bound, efficacy columns are not.
type Suite struct {
	Name string `json:"name"`
	// Seed drives every cell's randomness (default 1).
	Seed int64 `json:"seed,omitempty"`

	// Profile knobs mapped onto experiments.Config; zero fields take
	// that package's quick-profile defaults.
	Scale        float64 `json:"scale,omitempty"`
	TrainQueries int     `json:"train_queries,omitempty"`
	TestQueries  int     `json:"test_queries,omitempty"`
	Epochs       int     `json:"epochs,omitempty"`
	Inner        int     `json:"inner,omitempty"`
	Outer        int     `json:"outer,omitempty"`
	NumPoison    int     `json:"num_poison,omitempty"`

	Cells []Cell `json:"cells"`
}

// Validate checks the suite is runnable before any cell spends time.
func (s Suite) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("bench: suite needs a name")
	}
	if len(s.Cells) == 0 {
		return fmt.Errorf("bench: suite %s has no cells", s.Name)
	}
	seen := make(map[string]bool, len(s.Cells))
	for _, c := range s.Cells {
		id := c.ID()
		if seen[id] {
			return fmt.Errorf("bench: suite %s has duplicate cell %q", s.Name, id)
		}
		seen[id] = true
		switch c.Kind {
		case "attack":
			if c.Dataset == "" || c.Model == "" || c.Method == "" {
				return fmt.Errorf("bench: attack cell %q needs dataset, model and method", id)
			}
			if _, err := parseMethod(c.Method); err != nil {
				return err
			}
		case "load":
			if c.Dataset == "" || c.Model == "" || c.QPS <= 0 {
				return fmt.Errorf("bench: load cell %q needs dataset, model and qps", id)
			}
		case "capacity":
			if len(c.Nodes) == 0 {
				return fmt.Errorf("bench: capacity cell %q needs a nodes list", id)
			}
		default:
			return fmt.Errorf("bench: cell %q has unknown kind %q", id, c.Kind)
		}
	}
	return nil
}

// parseMethod maps a suite's lowercase method token onto core.Method.
func parseMethod(name string) (core.Method, error) {
	switch strings.ToLower(name) {
	case "random":
		return core.Random, nil
	case "lbs":
		return core.LbS, nil
	case "greedy":
		return core.Greedy, nil
	case "lbg":
		return core.LbG, nil
	case "pace":
		return core.PACE, nil
	default:
		return 0, fmt.Errorf("bench: unknown attack method %q", name)
	}
}

// Builtin returns a named built-in suite.
//
//   - "smoke": the CI gate — two cheap baseline attacks, one PACE
//     campaign and a short load run on the small profile, a few
//     seconds in-process.
//   - "quick": the laptop sweep — attacks across two models and three
//     methods (PACE included), fault-profile and codec load cells.
//   - "capacity": the fleet-capacity sweep of pacerouter with 1, 2 and
//     4 paced nodes.
func Builtin(name string) (Suite, error) {
	switch name {
	case "smoke":
		return Suite{
			Name: "smoke",
			Seed: 1,
			// Small profile: linear models train in milliseconds, so the
			// whole suite is CI-sized while still spanning surrogate
			// training, baseline poisoning, a full PACE campaign,
			// evaluation and open-loop load. Efficacy columns are
			// seed-deterministic; speed columns are machine-bound.
			Scale: 0.02, TrainQueries: 120, TestQueries: 40, Epochs: 10,
			NumPoison: 30,
			Cells: []Cell{
				{Kind: "attack", Dataset: "dmv", Model: "linear", Method: "random"},
				{Kind: "attack", Dataset: "dmv", Model: "linear", Method: "greedy"},
				{Kind: "attack", Dataset: "dmv", Model: "linear", Method: "pace"},
				{Kind: "load", Dataset: "dmv", Model: "linear", QPS: 300, DurationSec: 2},
			},
		}, nil
	case "quick":
		return Suite{
			Name: "quick",
			Seed: 1,
			Cells: []Cell{
				{Kind: "attack", Dataset: "dmv", Model: "linear", Method: "random"},
				{Kind: "attack", Dataset: "dmv", Model: "linear", Method: "greedy"},
				{Kind: "attack", Dataset: "dmv", Model: "linear", Method: "pace"},
				{Kind: "attack", Dataset: "dmv", Model: "fcn", Method: "greedy"},
				{Kind: "attack", Dataset: "dmv", Model: "fcn", Method: "pace"},
				{Kind: "attack", Dataset: "dmv", Model: "fcn", Method: "greedy", Faults: "flaky"},
				{Kind: "load", Dataset: "dmv", Model: "linear", QPS: 300, DurationSec: 5},
				{Kind: "load", Dataset: "dmv", Model: "linear", QPS: 300, DurationSec: 5, Codec: "binary"},
				{Kind: "load", Dataset: "dmv", Model: "linear", QPS: 300, DurationSec: 5, Codec: "json"},
				// Equal mean rate to the uniform cell above, very
				// different peaks: the burstiness comparison.
				{Kind: "load", Dataset: "dmv", Model: "linear", QPS: 300, DurationSec: 5, Workload: "bursty"},
			},
		}, nil
	case "capacity":
		return Suite{
			Name: "capacity",
			Seed: 1,
			Cells: []Cell{
				{Kind: "capacity", Dataset: "dmv", Model: "linear", QPS: 150, DurationSec: 4,
					Nodes: []int{1, 2, 4}},
			},
		}, nil
	default:
		return Suite{}, fmt.Errorf("bench: unknown built-in suite %q (have smoke, quick, capacity)", name)
	}
}

// LoadSuite reads a suite specification from a JSON file.
func LoadSuite(path string) (Suite, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Suite{}, err
	}
	var s Suite
	if err := json.Unmarshal(raw, &s); err != nil {
		return Suite{}, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return Suite{}, err
	}
	return s, nil
}
