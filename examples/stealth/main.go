// Stealth: keeping the poisoning workload statistically unremarkable.
//
// A database that screens incoming queries for anomalies would discard a
// blatantly weird poisoning workload before the CE model ever retrains
// on it (PACE §6). This example trains the VAE anomaly detector on the
// historical workload, then trains the poisoning generator twice — with
// and without the adversarial detector confrontation — and compares the
// two workloads' detection rates, Jensen-Shannon divergence from
// history, and attack effectiveness: the stealthy attack gives up a
// little damage to stay under the radar.
//
// Run: go run ./examples/stealth
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"pace/internal/ce"
	"pace/internal/core"
	"pace/internal/experiments"
	"pace/internal/generator"
	"pace/internal/metrics"
	"pace/internal/query"
	"pace/internal/workload"
)

func main() {
	cfg := experiments.Config{Seed: 9}.WithDefaults()
	world, err := experiments.NewWorld("dmv", cfg)
	if err != nil {
		log.Fatal(err)
	}
	target := world.NewBlackBox(ce.FCN, 1)
	sur := world.NewSurrogate(target, ce.FCN, 1)
	det := world.NewDetector(1)
	hEnc := experiments.Encodings(world.History, world.DS)

	run := func(useDetector bool, seed int64) ([]*query.Query, []float64) {
		rng := rand.New(rand.NewSource(seed))
		gen := generator.New(world.DS.Meta, world.DS.Joinable, world.GenCfg(), rng)
		d := det
		if !useDetector {
			d = nil
		}
		tr := core.NewTrainer(sur, gen, d, core.EngineOracle(world.WGen),
			core.MakeTestSamples(sur, world.Test), world.TrainerCfg(), rng)
		tr.TrainAccelerated(context.Background())
		return tr.GeneratePoison(context.Background(), cfg.NumPoison)
	}

	report := func(name string, qs []*query.Query, cards []float64) {
		enc := make([][]float64, len(qs))
		flagged := 0
		for i, q := range qs {
			enc[i] = q.Encode(world.DS.Meta)
			if det.IsAbnormal(enc[i]) {
				flagged++
			}
		}
		twin := world.NewBlackBox(ce.FCN, 1)
		clean := metrics.Mean(twin.QErrors(workload.Queries(world.Test), experiments.Cards(world.Test)))
		twin.ExecuteWorkload(context.Background(), qs, cards)
		after := metrics.Mean(twin.QErrors(workload.Queries(world.Test), experiments.Cards(world.Test)))
		fmt.Printf("%-22s flagged %3d/%d  JS divergence %.4f  Q-error %.2f → %.2f\n",
			name, flagged, len(qs), metrics.JSDivergence(hEnc, enc, 10), clean, after)
	}

	fmt.Printf("detector threshold ε = %.4f (calibrated on history)\n\n", det.Threshold())
	loudQ, loudC := run(false, 101)
	report("without confrontation:", loudQ, loudC)
	softQ, softC := run(true, 102)
	report("with confrontation:", softQ, softC)
}
