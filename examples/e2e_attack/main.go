// E2E attack: from poisoned estimates to slow query plans.
//
// The paper's Case 2 (malicious competitor): the attacker degrades a
// rented cloud database by poisoning its cardinality estimator, and the
// damage shows up as end-to-end latency. This example reproduces the
// causal chain on the TPC-H-shaped dataset: the cost-based optimizer
// plans 20 multi-table join queries with (a) true cardinalities, (b) the
// clean estimator and (c) the poisoned estimator, and every plan is then
// executed with true cardinalities — bad estimates buy real extra work.
//
// Run: go run ./examples/e2e_attack
package main

import (
	"context"
	"fmt"
	"log"

	"pace/internal/ce"
	"pace/internal/core"
	"pace/internal/experiments"
	"pace/internal/qopt"
	"pace/internal/query"
)

func main() {
	cfg := experiments.Config{Seed: 3, Outer: 10}.WithDefaults()
	world, err := experiments.NewWorld("tpch", cfg)
	if err != nil {
		log.Fatal(err)
	}
	target := world.NewBlackBox(ce.FCN, 1)

	// The 20 multi-table join queries whose latency we care about.
	var joins []*query.Query
	for len(joins) < 20 {
		l := world.WGen.Random(1)
		if l[0].Q.NumTables() >= 2 {
			joins = append(joins, l[0].Q)
		}
	}

	opt := qopt.New(world.DS, world.Eng)
	optimal := opt.Latency(joins, opt.TrueEstimate())
	clean := opt.Latency(joins, target.Estimate)

	// Poison the estimator.
	forced := ce.FCN
	attackCfg := core.Config{
		NumPoison: cfg.NumPoison,
		ForceType: &forced,
		Generator: world.GenCfg(),
		Trainer:   world.TrainerCfg(),
	}
	attackCfg.Surrogate.Queries = cfg.TrainQueries
	attackCfg.Surrogate.HP = world.HP()
	attackCfg.Surrogate.Train = world.TrainCfg()
	campaign := &core.Campaign{
		Target:   target,
		Workload: world.WGen,
		Test:     world.Test,
		History:  world.History,
		Config:   attackCfg,
		Seed:     3,
	}
	if _, err := campaign.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	poisoned := opt.Latency(joins, target.Estimate)

	fmt.Println("summed plan cost of 20 multi-join queries (row operations):")
	fmt.Printf("  true-cardinality plans:      %12.0f\n", optimal)
	fmt.Printf("  clean-estimator plans:       %12.0f (%.2f× optimal)\n", clean, clean/optimal)
	fmt.Printf("  poisoned-estimator plans:    %12.0f (%.2f× optimal, %.2f× clean)\n",
		poisoned, poisoned/optimal, poisoned/clean)
}
