// Defense: turning PACE against itself.
//
// The paper's first future-work direction (§8): a defender red-teams
// their own database with PACE, pools the poisoning queries from several
// independent attack runs, and trains a classifier to screen incoming
// queries before the CE model retrains on them. The demo shows the
// screen catching a FRESH attack it never saw while passing the benign
// workload through, and compares the target's accuracy with and without
// the screen in place.
//
// Run: go run ./examples/defense
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"pace/internal/ce"
	"pace/internal/defense"
	"pace/internal/experiments"
	"pace/internal/metrics"
	"pace/internal/query"
	"pace/internal/workload"
)

func main() {
	cfg := experiments.Config{Seed: 5}.WithDefaults()
	world, err := experiments.NewWorld("dmv", cfg)
	if err != nil {
		log.Fatal(err)
	}
	target := world.NewBlackBox(ce.FCN, 1)
	qs := workload.Queries(world.Test)
	cards := experiments.Cards(world.Test)
	clean := metrics.Mean(target.QErrors(qs, cards))

	attack := func(off int64) ([]*query.Query, []float64) {
		sur := world.NewSurrogate(target, ce.FCN, off)
		tr := world.TrainPACE(sur, nil, off)
		return tr.GeneratePoison(context.Background(), cfg.NumPoison)
	}
	encode := func(qs []*query.Query) [][]float64 {
		out := make([][]float64, len(qs))
		for i, q := range qs {
			out[i] = q.Encode(world.DS.Meta)
		}
		return out
	}

	// Red team: three independent attacks supply the poison class.
	var redTeamPoison [][]float64
	for off := int64(1); off <= 3; off++ {
		pq, _ := attack(off)
		redTeamPoison = append(redTeamPoison, encode(pq)...)
	}
	screen := defense.New(world.DS.Meta.Dim(), defense.Config{},
		rand.New(rand.NewSource(5)))
	screen.Train(redTeamPoison, experiments.Encodings(world.History, world.DS))

	// The real adversary strikes with a fresh attack.
	poisonQ, poisonC := attack(4)

	// Without the screen: the target retrains on everything.
	unscreened := world.NewBlackBox(ce.FCN, 1)
	unscreened.ExecuteWorkload(context.Background(), poisonQ, poisonC)
	hit := metrics.Mean(unscreened.QErrors(qs, cards))

	// With the screen: flagged queries never reach the update path.
	accepted, rejected := screen.Filter(world.DS.Meta, poisonQ)
	acceptedCards := make([]float64, 0, len(accepted))
	for _, q := range accepted {
		for i, pq := range poisonQ {
			if pq == q {
				acceptedCards = append(acceptedCards, poisonC[i])
				break
			}
		}
	}
	screened := world.NewBlackBox(ce.FCN, 1)
	screened.ExecuteWorkload(context.Background(), accepted, acceptedCards)
	defended := metrics.Mean(screened.QErrors(qs, cards))

	benign := world.WGen.Random(100)
	eval := screen.Evaluate(encode(poisonQ), experiments.Encodings(benign, world.DS))

	fmt.Printf("screen quality vs fresh attack: recall %.0f%%, false-positive rate %.0f%%\n",
		eval.Recall()*100, eval.FalsePositiveRate()*100)
	fmt.Printf("poison queries blocked: %d/%d\n", len(rejected), len(poisonQ))
	fmt.Printf("mean test Q-error: clean %.2f | attacked %.2f | attacked behind screen %.2f\n",
		clean, hit, defended)
}
