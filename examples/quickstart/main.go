// Quickstart: poison a learned cardinality estimator in ~20 lines.
//
// A synthetic DMV-shaped database is built, a query-driven FCN estimator
// is trained on historical queries (the target — visible to us only as a
// black box), and the full PACE pipeline is run against it: surrogate
// acquisition, adversarial generator + detector training, poisoning
// query generation and the target's incremental update. The target's
// test accuracy before and after tells the story.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"pace/internal/ce"
	"pace/internal/core"
	"pace/internal/experiments"
	"pace/internal/metrics"
	"pace/internal/workload"
)

func main() {
	cfg := experiments.Config{Seed: 7}.WithDefaults()
	world, err := experiments.NewWorld("dmv", cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The victim: a query-driven FCN estimator, already deployed and
	// incrementally retraining on executed queries.
	target := world.NewBlackBox(ce.FCN, 1)

	queries := workload.Queries(world.Test)
	cards := experiments.Cards(world.Test)
	before := metrics.Mean(target.QErrors(queries, cards))

	// The attacker: SQL access, schema knowledge, COUNT(*) and EXPLAIN.
	forced := ce.FCN // see examples/speculation for the black-box case
	attackCfg := core.Config{
		NumPoison: cfg.NumPoison,
		ForceType: &forced,
		Workers:   -1, // all cores; results are seed-determined either way
		Generator: world.GenCfg(),
		Trainer:   world.TrainerCfg(),
	}
	attackCfg.Surrogate.Queries = cfg.TrainQueries
	attackCfg.Surrogate.HP = world.HP()
	attackCfg.Surrogate.Train = world.TrainCfg()

	campaign := &core.Campaign{
		Target:   target,
		Workload: world.WGen,
		Test:     world.Test,
		History:  world.History,
		Config:   attackCfg,
		Seed:     7,
	}
	res, err := campaign.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	after := metrics.Mean(target.QErrors(queries, cards))
	fmt.Printf("poisoning queries executed: %d\n", len(res.Poison))
	fmt.Printf("mean test Q-error: %.2f → %.2f (%.1f×)\n", before, after, after/before)
	fmt.Printf("attack wall time: train %v, generate %v, update %v\n",
		res.TrainTime.Round(1e6), res.GenTime.Round(1e6), res.AttackTime.Round(1e6))
}
