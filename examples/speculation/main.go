// Speculation: identify a black-box CE model's architecture from the
// outside, then clone it.
//
// The scenario of PACE §4: the attacker cannot see the deployed model's
// type or parameters — only its estimates (EXPLAIN) and their latency.
// Six candidate architectures are trained locally, probe workloads with
// controlled predicate counts and range sizes are sent to everyone, and
// the candidate whose (Q-error, latency) profile is most similar to the
// black box reveals the hidden architecture. A white-box surrogate is
// then fitted with the combined Eq. 7 loss and its fidelity measured.
//
// Run: go run ./examples/speculation
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"pace/internal/ce"
	"pace/internal/experiments"
	"pace/internal/surrogate"
)

func main() {
	cfg := experiments.Config{Seed: 11}.WithDefaults()
	world, err := experiments.NewWorld("tpch", cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The hidden deployment: an MSCN estimator. The attacker does not
	// get to see this line.
	secret := ce.MSCN
	target := world.NewBlackBox(secret, 1)

	rng := rand.New(rand.NewSource(11))
	spec, err := surrogate.Speculate(context.Background(), target, world.WGen, surrogate.SpeculationConfig{
		CandidateTrainQueries: cfg.TrainQueries / 2,
		HP:                    world.HP(),
		Train:                 world.TrainCfg(),
	}, rng)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("similarity of each candidate architecture to the black box:")
	for _, typ := range ce.Types() {
		marker := " "
		if typ == spec.Type {
			marker = "←"
		}
		fmt.Printf("  %-10s %.4f %s\n", typ, spec.Similarities[typ], marker)
	}
	fmt.Printf("speculated: %s (actual: %s)\n\n", spec.Type, secret)

	sur, err := surrogate.Train(context.Background(), target, spec.Type, world.WGen, surrogate.TrainConfig{
		Queries: cfg.TrainQueries,
		HP:      world.HP(),
		Train:   world.TrainCfg(),
	}, rng)
	if err != nil {
		log.Fatal(err)
	}

	probe := world.WGen.Random(60)
	fid := surrogate.Fidelity(context.Background(), target, sur, probe)
	fmt.Printf("surrogate fidelity on unseen queries: mean |Δ| = %.4f "+
		"(normalized log space; 0 = identical behaviour)\n", fid)
}
